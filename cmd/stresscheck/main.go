// Command stresscheck is the native-execution stress frontend: it hammers
// a registered scenario with G real goroutines on the ungated memory path
// (internal/stress), where the Go scheduler and the hardware — not the
// cooperative gate — pick the interleavings. Where tascheck proves
// correctness over every interleaving of a small instance, stresscheck
// measures what the paper's claims are empirically about: throughput
// scaling over a GOMAXPROCS sweep, per-operation latency tails
// (p50/p90/p99/p999 from a mergeable log-bucketed histogram), and the RMW
// contention census — attempts and lost races — from the instrumented
// atomics backend. Recorded histories are spot-checked through the
// scenario's own oracle every -check-every rounds (sampling, not
// verification: the exhaustive tiers remain the source of truth for
// correctness).
//
// The default output is one GBBS-style markdown scaling table per run
// (one row per sweep point); -json prints the result array instead. The
// observability surfaces mirror tascheck: -debug-addr serves live
// Prometheus /metrics (repro_stress_* counters and latency gauges update
// mid-run), -events writes sweep_start/point_done/sweep_end JSON lines.
//
// Exit codes: 0 ok, 1 when spot-checks failed on a scenario that is not
// a planted-bug (ExpectFail) scenario — or never failed on one that is,
// 2 usage errors.
//
// Usage:
//
//	stresscheck -scenario a1 -g 8 -procs-sweep 1,2,4,8
//	stresscheck -scenario composed -g 8 -duration 5s -arrival 100000
//	stresscheck -scenario composed -g 8 -debug-addr 127.0.0.1:6060 -events ev.jsonl
//	stresscheck -scenario a1 -g 4 -max-rounds 1000 -json
//	stresscheck -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/stress"
)

func main() {
	scenarioName := flag.String("scenario", "", "scenario to stress: a registered name or gen:<seed> (see -list)")
	list := flag.Bool("list", false, "print every registered and generator scenario with its oracle, then exit")
	g := flag.Int("g", defG, "stress goroutines (clamped to the scenario's process range)")
	duration := flag.Duration("duration", defDuration, "wall-clock budget per sweep point")
	arrival := flag.Float64("arrival", 0, "per-goroutine arrival rate in ops/sec (Poisson gaps; 0 = closed loop)")
	procsSweep := flag.String("procs-sweep", "", "comma-separated GOMAXPROCS values, one sweep point each (empty = one point at the current setting)")
	checkEvery := flag.Int("check-every", defCheckEvery, "spot-check the recorded history every Nth round (-1 = never)")
	maxRounds := flag.Int64("max-rounds", 0, "additionally cap rounds per point (0 = duration only; the deterministic-workload knob)")
	seed := flag.Int64("seed", defSeed, "seed for the arrival-gap generators")
	lincheck := flag.String("lincheck", defLincheck, "linearizability tier: spot (sampled spot-checks), off, online (stream every round's history through the JIT checker during the run), post (record and verify after the run)")
	linWindow := flag.Int("lin-window", 0, "JIT checker window: max resident ops between quiescent cuts (0 = checker default; needs -lincheck online/post)")
	linMaxConfigs := flag.Int("lin-max-configs", 0, "JIT checker per-segment configuration budget (0 = checker default; needs -lincheck online/post)")
	linMaxOps := flag.Int64("lin-max-ops", 0, "cap the operations fed to the checker, later rounds run unverified (0 = unlimited; needs -lincheck online/post)")
	jsonOut := flag.Bool("json", false, "print the sweep results as one JSON array instead of the scaling table")
	events := flag.String("events", "", "write sweep lifecycle events to this file as JSON lines")
	debugAddr := flag.String("debug-addr", "", "serve /metrics (Prometheus), /statusz (JSON) and /debug/pprof on this address for the run's duration")
	flag.Parse()

	cf := &cliFlags{
		g:             *g,
		duration:      *duration,
		arrival:       *arrival,
		procsSweep:    *procsSweep,
		checkEvery:    *checkEvery,
		maxRounds:     *maxRounds,
		seed:          *seed,
		lincheck:      *lincheck,
		linWindow:     *linWindow,
		linMaxConfigs: *linMaxConfigs,
		linMaxOps:     *linMaxOps,
		jsonOut:       *jsonOut,
		events:        *events,
		debugAddr:     *debugAddr,
	}
	path := pathStress
	if *list {
		path = pathList
	}
	if err := validateFlags(cf, path, pathContexts()); err != nil {
		fmt.Fprintf(os.Stderr, "stresscheck: %v\n", err)
		os.Exit(2)
	}
	if *list {
		fmt.Print(scenario.Listing())
		return
	}
	if *scenarioName == "" {
		fmt.Fprintln(os.Stderr, "stresscheck: -scenario is required (see -list)")
		os.Exit(2)
	}
	sc, err := scenario.Lookup(*scenarioName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stresscheck: %v\n%s", err, scenario.Listing())
		os.Exit(2)
	}
	procsList, err := parseProcsSweep(*procsSweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stresscheck: %v\n", err)
		os.Exit(2)
	}

	n := sc.Procs(*g)
	m := obs.New(n)
	m.SetInfo("mode", "stress")
	m.SetInfo("scenario", sc.Name)
	m.SetInfo("g", strconv.Itoa(n))
	m.SetInfo("duration", duration.String())

	var el *obs.EventLog
	if *events != "" {
		out, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stresscheck: opening -events file: %v\n", err)
			os.Exit(2)
		}
		el = obs.NewEventLog(out)
		m.SetEvents(el)
	}
	var srv *obs.Server
	if *debugAddr != "" {
		srv, err = obs.Serve(*debugAddr, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stresscheck: starting -debug-addr server: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "stresscheck: debug endpoint on http://%s (/metrics, /statusz, /debug/pprof)\n", srv.Addr)
	}

	linMode, err := stress.ParseLinMode(*lincheck)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stresscheck: %v\n", err)
		os.Exit(2)
	}
	m.SetInfo("lincheck", linMode.String())

	results, runErr := stress.Sweep(stress.Config{
		Scenario:      sc,
		G:             *g,
		Duration:      *duration,
		MaxRounds:     *maxRounds,
		Arrival:       *arrival,
		CheckEvery:    *checkEvery,
		Seed:          *seed,
		LinMode:       linMode,
		LinWindow:     *linWindow,
		LinMaxConfigs: *linMaxConfigs,
		LinMaxOps:     *linMaxOps,
		Metrics:       m,
	}, procsList)

	if el != nil {
		if cerr := el.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "stresscheck: writing -events file: %v\n", cerr)
		}
	}
	if srv != nil {
		defer srv.Close()
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "stresscheck: %v\n", runErr)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "stresscheck: encoding results: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(stress.Table(results, *duration))
	}

	os.Exit(verdict(sc, results))
}

// verdict maps the correctness tally — spot-checks and, in the streaming
// lincheck modes, full-history verification — to the exit code: a normal
// scenario must never fail either; a planted-bug scenario is expected to
// be caught (though native scheduling may not hit the buggy window in a
// short run — only an actual observed failure counts either way). A
// checker contract error (budget overrun, lost trace source) is always an
// exit-1 failure: it means the verification the user asked for did not
// happen.
func verdict(sc scenario.Scenario, results []stress.Result) int {
	var fails, checks, linFails, linOps int64
	for _, r := range results {
		fails += r.CheckFailures
		checks += r.CheckRounds
		linFails += r.LinFailures
		linOps += r.LinOps
		if r.LinErr != "" {
			fmt.Fprintf(os.Stderr, "stresscheck: lincheck error (procs=%d): %s\n", r.Procs, r.LinErr)
			return 1
		}
	}
	if sc.Params.ExpectFail {
		if fails+linFails > 0 {
			fmt.Fprintf(os.Stderr, "stresscheck: planted bug caught (%d spot-check, %d lincheck failures; expected)\n", fails, linFails)
			return 0
		}
		if checks > 0 || linOps > 0 {
			fmt.Fprintf(os.Stderr, "stresscheck: planted-bug scenario passed every check — native scheduling did not hit the buggy window\n")
			return 1
		}
		return 0
	}
	if linFails > 0 {
		for _, r := range results {
			if r.FirstLinErr != "" {
				fmt.Fprintf(os.Stderr, "stresscheck: lincheck FAILED (procs=%d): %s\n", r.Procs, r.FirstLinErr)
				break
			}
		}
		fmt.Fprintf(os.Stderr, "stresscheck: %d round histories failed linearizability (%d ops verified)\n", linFails, linOps)
		return 1
	}
	if fails > 0 {
		for _, r := range results {
			if r.FirstCheckErr != "" {
				fmt.Fprintf(os.Stderr, "stresscheck: spot-check FAILED (procs=%d): %s\n", r.Procs, r.FirstCheckErr)
				break
			}
		}
		fmt.Fprintf(os.Stderr, "stresscheck: %d of %d spot-checks failed\n", fails, checks)
		return 1
	}
	return 0
}

// parseProcsSweep parses "1,2,4,8" into the GOMAXPROCS sweep points.
func parseProcsSweep(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -procs-sweep entry %q (want positive integers, e.g. 1,2,4,8)", p)
		}
		out = append(out, v)
	}
	return out, nil
}
