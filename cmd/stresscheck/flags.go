package main

// Table-driven flag validation over the shared internal/cliflags core,
// mirroring tascheck's contract: one resolved run path per invocation,
// value-based changed-from-default detection, first violation reported as
// a usage error (exit 2). stresscheck has two paths — the listing, which
// runs nothing, and the stress run itself — so the table's job is mostly
// to reject output-demanding flags on -list instead of silently ignoring
// them.

import (
	"fmt"
	"time"

	"repro/internal/cliflags"
)

// The flag defaults, shared by the declarations in main and the
// changed-from-default detection here.
const (
	defG          = 8
	defDuration   = 2 * time.Second
	defCheckEvery = 64
	defSeed       = int64(1)
	defLincheck   = "spot"
)

// runPath classifies an invocation by what it runs.
type runPath int

const (
	// pathList prints the registry and runs nothing.
	pathList runPath = iota
	// pathStress is the stress run (single point or GOMAXPROCS sweep).
	pathStress
	numPaths
)

// String names the path for tests and diagnostics.
func (p runPath) String() string {
	switch p {
	case pathList:
		return "list"
	case pathStress:
		return "stress"
	}
	return fmt.Sprintf("runPath(%d)", int(p))
}

// cliFlags holds every parsed path-restricted flag value.
type cliFlags struct {
	g             int
	duration      time.Duration
	arrival       float64
	procsSweep    string
	checkEvery    int
	maxRounds     int64
	seed          int64
	lincheck      string
	linWindow     int
	linMaxConfigs int
	linMaxOps     int64
	jsonOut       bool
	events        string
	debugAddr     string
}

// flagRule is the shared rule type instantiated for this binary.
type flagRule = cliflags.Rule[*cliFlags, runPath]

func on(paths ...runPath) []bool {
	return cliflags.On(int(numPaths), paths...)
}

// listContext is the -list rejection wording for the output flags.
const listContext = "-list (it prints the registry and runs nothing)"

// flagRules is THE flag-applicability table. The workload knobs follow the
// tascheck tradition of being silently valid on -list; the output sinks
// reject there.
func flagRules() []flagRule {
	return []flagRule{
		{Name: "-g", Set: func(f *cliFlags) bool { return f.g != defG },
			Allowed: on(pathList, pathStress)},
		{Name: "-duration", Set: func(f *cliFlags) bool { return f.duration != defDuration },
			Allowed: on(pathList, pathStress)},
		{Name: "-arrival", Set: func(f *cliFlags) bool { return f.arrival != 0 },
			Allowed: on(pathList, pathStress)},
		{Name: "-procs-sweep", Set: func(f *cliFlags) bool { return f.procsSweep != "" },
			Allowed: on(pathList, pathStress)},
		{Name: "-check-every", Set: func(f *cliFlags) bool { return f.checkEvery != defCheckEvery },
			Allowed: on(pathList, pathStress)},
		{Name: "-max-rounds", Set: func(f *cliFlags) bool { return f.maxRounds != 0 },
			Allowed: on(pathList, pathStress)},
		{Name: "-seed", Set: func(f *cliFlags) bool { return f.seed != defSeed },
			Allowed: on(pathList, pathStress)},
		{Name: "-lincheck", Set: func(f *cliFlags) bool { return f.lincheck != defLincheck },
			Allowed: on(pathList, pathStress)},
		{Name: "-lin-window", Set: func(f *cliFlags) bool { return f.linWindow != 0 },
			Allowed: on(pathList, pathStress)},
		{Name: "-lin-max-configs", Set: func(f *cliFlags) bool { return f.linMaxConfigs != 0 },
			Allowed: on(pathList, pathStress)},
		{Name: "-lin-max-ops", Set: func(f *cliFlags) bool { return f.linMaxOps != 0 },
			Allowed: on(pathList, pathStress)},
		{Name: "-json", Set: func(f *cliFlags) bool { return f.jsonOut },
			Allowed: on(pathStress),
			Context: map[runPath]string{pathList: "-list (it is a stress-result array)"}},
		{Name: "-events", Set: func(f *cliFlags) bool { return f.events != "" },
			Allowed: on(pathStress)},
		{Name: "-debug-addr", Set: func(f *cliFlags) bool { return f.debugAddr != "" },
			Allowed: on(pathStress)},
	}
}

// pathContexts builds each path's default rejection wording.
func pathContexts() map[runPath]string {
	return map[runPath]string{
		pathList:   listContext,
		pathStress: "a stress run",
	}
}

// validateFlags checks every table rule against the resolved path, then
// the cross-flag dependencies the per-flag table cannot express: the JIT
// checker budget knobs only mean something when a streaming lincheck mode
// is selected.
func validateFlags(f *cliFlags, path runPath, contexts map[runPath]string) error {
	if err := cliflags.Validate(f, path, flagRules(), contexts); err != nil {
		return err
	}
	if f.lincheck != "online" && f.lincheck != "post" {
		for _, dep := range []struct {
			name string
			set  bool
		}{
			{"-lin-window", f.linWindow != 0},
			{"-lin-max-configs", f.linMaxConfigs != 0},
			{"-lin-max-ops", f.linMaxOps != 0},
		} {
			if dep.set {
				return fmt.Errorf("%s requires -lincheck online or post (got -lincheck %s)", dep.name, f.lincheck)
			}
		}
	}
	return nil
}
