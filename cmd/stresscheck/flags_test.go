package main

// Exhaustive validation of stresscheck's flag-applicability table,
// extending the tascheck contract to the new binary: every rule is
// exercised on every run path, both set (changed from default) and unset,
// so no (flag, path) combination can silently drift. The setters map is
// the test's own knowledge of how to flip each flag to a non-default
// value; a rule without a setter fails the completeness check.

import (
	"strings"
	"testing"
	"time"
)

// defaultFlags mirrors the parsed defaults of a bare invocation: every
// rule's Set must report false on it.
func defaultFlags() *cliFlags {
	return &cliFlags{
		g:          defG,
		duration:   defDuration,
		checkEvery: defCheckEvery,
		seed:       defSeed,
		lincheck:   defLincheck,
	}
}

// setters flips each table flag to a non-default value.
var setters = map[string]func(f *cliFlags){
	"-g":           func(f *cliFlags) { f.g = defG + 1 },
	"-duration":    func(f *cliFlags) { f.duration = defDuration + time.Second },
	"-arrival":     func(f *cliFlags) { f.arrival = 1000 },
	"-procs-sweep": func(f *cliFlags) { f.procsSweep = "1,2,4" },
	"-check-every": func(f *cliFlags) { f.checkEvery = defCheckEvery + 1 },
	"-max-rounds":  func(f *cliFlags) { f.maxRounds = 100 },
	"-seed":        func(f *cliFlags) { f.seed = defSeed + 1 },
	"-lincheck":    func(f *cliFlags) { f.lincheck = "online" },
	// The budget knobs are only coherent alongside a streaming mode, so
	// their setters select one too (both flags are allowed on every path,
	// so the extra firing rule cannot change any verdict).
	"-lin-window":      func(f *cliFlags) { f.linWindow = 4096; f.lincheck = "online" },
	"-lin-max-configs": func(f *cliFlags) { f.linMaxConfigs = 1 << 20; f.lincheck = "post" },
	"-lin-max-ops":     func(f *cliFlags) { f.linMaxOps = 1 << 20; f.lincheck = "post" },
	"-json":            func(f *cliFlags) { f.jsonOut = true },
	"-events":          func(f *cliFlags) { f.events = "events.jsonl" },
	"-debug-addr":      func(f *cliFlags) { f.debugAddr = "localhost:0" },
}

// TestFlagTableEveryCombination enumerates (rule × path): a set flag
// passes exactly on its allowed paths and the rejection names the flag;
// an unset flag passes everywhere.
func TestFlagTableEveryCombination(t *testing.T) {
	contexts := pathContexts()
	rules := flagRules()
	if len(rules) != len(setters) {
		t.Fatalf("table has %d rules, test knows %d setters — keep them in sync", len(rules), len(setters))
	}
	for _, r := range rules {
		setter, ok := setters[r.Name]
		if !ok {
			t.Fatalf("no setter for table rule %s", r.Name)
		}
		f := defaultFlags()
		if r.Set(f) {
			t.Fatalf("%s reports set on a default cliFlags", r.Name)
		}
		setter(f)
		if !r.Set(f) {
			t.Fatalf("setter for %s did not flip it off its default", r.Name)
		}
		// Each setter flips exactly one field and each rule reads exactly
		// one, so only the rule under test can fire.
		for path := runPath(0); path < numPaths; path++ {
			err := validateFlags(f, path, contexts)
			if r.Allowed[path] {
				if err != nil {
					t.Errorf("%s on %s: unexpectedly rejected: %v", r.Name, path, err)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s on %s: silently accepted", r.Name, path)
				continue
			}
			if !strings.HasPrefix(err.Error(), r.Name+" does not apply to ") {
				t.Errorf("%s on %s: rejection does not name the flag: %v", r.Name, path, err)
			}
		}
	}
}

// TestFlagDefaultsPassEverywhere: a default cliFlags is valid on every
// path — spelling no flag can never be a usage error.
func TestFlagDefaultsPassEverywhere(t *testing.T) {
	contexts := pathContexts()
	for path := runPath(0); path < numPaths; path++ {
		if err := validateFlags(defaultFlags(), path, contexts); err != nil {
			t.Errorf("defaults rejected on %s: %v", path, err)
		}
	}
}

// TestFlagContextWording pins the per-path hints.
func TestFlagContextWording(t *testing.T) {
	contexts := pathContexts()
	cases := []struct {
		mutate func(f *cliFlags)
		path   runPath
		want   string
	}{
		{func(f *cliFlags) { f.jsonOut = true }, pathList, "stress-result array"},
		{func(f *cliFlags) { f.events = "x" }, pathList, "runs nothing"},
		{func(f *cliFlags) { f.debugAddr = "x" }, pathList, "runs nothing"},
	}
	for _, c := range cases {
		f := defaultFlags()
		c.mutate(f)
		err := validateFlags(f, c.path, contexts)
		if err == nil {
			t.Errorf("%s: expected a rejection", c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("rejection on %s lost its hint %q: %v", c.path, c.want, err)
		}
	}
}

// TestLincheckCrossFlagDeps pins the cross-flag dependency the per-flag
// table cannot express: the JIT budget knobs demand a streaming mode.
func TestLincheckCrossFlagDeps(t *testing.T) {
	contexts := pathContexts()
	knobs := map[string]func(f *cliFlags){
		"-lin-window":      func(f *cliFlags) { f.linWindow = 4096 },
		"-lin-max-configs": func(f *cliFlags) { f.linMaxConfigs = 1 << 20 },
		"-lin-max-ops":     func(f *cliFlags) { f.linMaxOps = 1 << 20 },
	}
	for name, set := range knobs {
		for _, mode := range []string{defLincheck, "off"} {
			f := defaultFlags()
			f.lincheck = mode
			set(f)
			err := validateFlags(f, pathStress, contexts)
			if err == nil {
				t.Errorf("%s with -lincheck %s: silently accepted", name, mode)
				continue
			}
			if !strings.Contains(err.Error(), name) || !strings.Contains(err.Error(), "online or post") {
				t.Errorf("%s with -lincheck %s: rejection lost its hint: %v", name, mode, err)
			}
		}
		for _, mode := range []string{"online", "post"} {
			f := defaultFlags()
			f.lincheck = mode
			set(f)
			if err := validateFlags(f, pathStress, contexts); err != nil {
				t.Errorf("%s with -lincheck %s: unexpectedly rejected: %v", name, mode, err)
			}
		}
	}
}

// TestPathStrings keeps the diagnostic names stable.
func TestPathStrings(t *testing.T) {
	want := map[runPath]string{pathList: "list", pathStress: "stress"}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), w)
		}
	}
}

// TestParseProcsSweep pins the sweep-list syntax and its rejections.
func TestParseProcsSweep(t *testing.T) {
	got, err := parseProcsSweep("1, 2,4,8")
	if err != nil || len(got) != 4 || got[0] != 1 || got[3] != 8 {
		t.Errorf("parseProcsSweep(\"1, 2,4,8\") = %v, %v", got, err)
	}
	if got, err := parseProcsSweep(""); err != nil || got != nil {
		t.Errorf("empty sweep = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"0", "-1", "a", "1,,2", "1,2.5"} {
		if _, err := parseProcsSweep(bad); err == nil {
			t.Errorf("parseProcsSweep(%q): accepted", bad)
		}
	}
}
