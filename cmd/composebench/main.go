// Command composebench runs the experiment suite that regenerates the
// paper's quantitative claims (DESIGN.md, E1–E8) and prints each result as
// a markdown table. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	composebench              # run every experiment
//	composebench -exp E3      # run one experiment
//	composebench -seed 7      # re-roll the randomized schedules
//	composebench -list        # list experiments
//
// Randomized experiments derive their schedules from -seed (default 1), so
// a table regenerates identically until the seed is changed deliberately.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 1, "base seed for randomized experiment schedules")
	flag.Parse()
	bench.SetSeed(*seed)

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n\n", e.ID, e.Desc)
		for _, t := range e.Run() {
			fmt.Println(t.Markdown())
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "composebench: no experiment matches %q (try -list)\n", *expFlag)
		os.Exit(1)
	}
}
