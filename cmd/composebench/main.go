// Command composebench runs the experiment suite that regenerates the
// paper's quantitative claims (DESIGN.md, E1–E12) and prints each result
// as a markdown table. EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	composebench              # run every experiment
//	composebench -exp E3      # run one experiment
//	composebench -seed 7      # re-roll the randomized schedules
//	composebench -scenario fai -exp E10,E11,E12   # engine experiments on another scenario
//	composebench -json out.json   # additionally record rows as JSON
//	composebench -list        # list experiments
//
// Randomized experiments derive their schedules from -seed (default 1), so
// a table regenerates identically until the seed is changed deliberately.
// The engine experiments (E10–E12) drive harnesses from the scenario
// registry (internal/scenario); -scenario swaps in any registered or
// generated (gen:<seed>) scenario, so their rows can be produced for every
// checkable workload, not just the composed TAS.
// With -json, every table row is additionally written to the given file as
// a JSON array of one object per row ({experiment, table, title, row,
// cells}), the machine-readable form the bench trajectory (BENCH_*.json)
// records; the markdown output is unchanged.
// With -bench-dir, the engine-driving experiments (E10–E15) additionally
// write one BENCH_<id>.json perf-trajectory file each — the committed
// files CI's bench-regression smoke compares fresh runs against via
// benchdiff (see EXPERIMENTS.md, "Perf-trajectory files").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 1, "base seed for randomized experiment schedules")
	scenarioFlag := flag.String("scenario", "", "registered or gen:<seed> scenario the engine experiments (E10-E12) drive (default: each experiment's documented workload)")
	jsonOut := flag.String("json", "", "also write the experiment rows to this file as JSON")
	benchDir := flag.String("bench-dir", "", "write BENCH_<id>.json perf-trajectory files for the engine experiments into this directory")
	flag.Parse()
	bench.SetSeed(*seed)
	if err := bench.SetScenario(*scenarioFlag); err != nil {
		fmt.Fprintf(os.Stderr, "composebench: %v (try tascheck -list)\n", err)
		os.Exit(2)
	}

	experiments := bench.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	ran := 0
	var rows []bench.RowJSON
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n\n", e.ID, e.Desc)
		tables := e.Run()
		for _, t := range tables {
			fmt.Println(t.Markdown())
		}
		if *jsonOut != "" {
			rows = append(rows, bench.RowsJSON(e.ID, tables)...)
		}
		if *benchDir != "" {
			if err := writeBench(*benchDir, e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "composebench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "composebench: no experiment matches %q (try -list)\n", *expFlag)
		os.Exit(1)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rows, "", " ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "composebench: encoding rows: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "composebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("composebench: %d experiment rows written to %s\n", len(rows), *jsonOut)
	}
}

// writeBench drains the perf rows one experiment recorded into
// BENCH_<id>.json. Experiments without timed engine runs record nothing
// and produce no file.
func writeBench(dir, id string) error {
	perf := bench.TakePerf(id)
	if len(perf) == 0 {
		return nil
	}
	data, err := json.MarshalIndent(perf, "", " ")
	if err != nil {
		return fmt.Errorf("encoding perf rows: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("composebench: %d perf rows written to %s\n", len(perf), path)
	return nil
}
