package main

// Exhaustive validation of the flag-applicability table: every rule is
// exercised on every run path, both set (changed from default) and unset,
// so no (flag, path) combination can silently drift. The setters map is
// the test's own knowledge of how to flip each flag to a non-default
// value; a rule without a setter fails the completeness check.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/randexp"
)

// defaultFlags mirrors the parsed defaults of a bare invocation: every
// rule's set() must report false on it.
func defaultFlags() *cliFlags {
	return &cliFlags{
		sampler:   defSampler,
		pctDepth:  randexp.DefaultPCTDepth,
		maxExecs:  defMax,
		samples:   defSamples,
		seed:      defSeed,
		prune:     explore.PruneSourceDPOR,
		lincheck:  defLincheck,
		snapshots: explore.SnapshotAuto,
	}
}

// setters flips each table flag to a non-default value.
var setters = map[string]func(f *cliFlags){
	"-sampler":        func(f *cliFlags) { f.sampler = "pct" },
	"-pct-depth":      func(f *cliFlags) { f.pctDepth = randexp.DefaultPCTDepth + 1 },
	"-rates":          func(f *cliFlags) { f.rates = "1,2" },
	"-saturation":     func(f *cliFlags) { f.saturation = 5 },
	"-max":            func(f *cliFlags) { f.maxExecs = defMax + 1 },
	"-samples":        func(f *cliFlags) { f.samples = defSamples + 1 },
	"-seed":           func(f *cliFlags) { f.seed = defSeed + 1 },
	"-prune":          func(f *cliFlags) { f.prune = explore.PruneSleep },
	"-lincheck":       func(f *cliFlags) { f.lincheck = "jit" },
	"-cache":          func(f *cliFlags) { f.cache = true },
	"-checkpoint-out": func(f *cliFlags) { f.ckptOut = "ckpt.json" },
	"-checkpoint-in":  func(f *cliFlags) { f.ckptIn = "ckpt.json" },
	"-timebudget":     func(f *cliFlags) { f.timeBudget = time.Second },
	"-snapshots":      func(f *cliFlags) { f.snapshots = explore.SnapshotOn },
	"-failfast":       func(f *cliFlags) { f.failFast = true },
	"-json":           func(f *cliFlags) { f.jsonOut = true },
	"-progress":       func(f *cliFlags) { f.progress = time.Second },
	"-events":         func(f *cliFlags) { f.events = "events.jsonl" },
	"-debug-addr":     func(f *cliFlags) { f.debugAddr = "localhost:0" },
	"-trace-out":      func(f *cliFlags) { f.traceOut = "trace.json" },
}

// TestFlagTableEveryCombination enumerates (rule × path): a set flag
// passes exactly on its allowed paths and the rejection names the flag;
// an unset flag passes everywhere.
func TestFlagTableEveryCombination(t *testing.T) {
	contexts := pathContexts(4, 3)
	rules := flagRules()
	if len(rules) != len(setters) {
		t.Fatalf("table has %d rules, test knows %d setters — keep them in sync", len(rules), len(setters))
	}
	for _, r := range rules {
		setter, ok := setters[r.Name]
		if !ok {
			t.Fatalf("no setter for table rule %s", r.Name)
		}
		f := defaultFlags()
		if r.Set(f) {
			t.Fatalf("%s reports set on a default cliFlags", r.Name)
		}
		setter(f)
		if !r.Set(f) {
			t.Fatalf("setter for %s did not flip it off its default", r.Name)
		}
		// Each setter flips exactly one field and each rule reads exactly
		// one, so only the rule under test can fire.
		for path := runPath(0); path < numPaths; path++ {
			err := validateFlags(f, path, contexts)
			if r.Allowed[path] {
				if err != nil {
					t.Errorf("%s on %s: unexpectedly rejected: %v", r.Name, path, err)
				}
				continue
			}
			if err == nil {
				t.Errorf("%s on %s: silently accepted", r.Name, path)
				continue
			}
			if !strings.HasPrefix(err.Error(), r.Name+" does not apply to ") {
				t.Errorf("%s on %s: rejection does not name the flag: %v", r.Name, path, err)
			}
		}
	}
}

// TestFlagDefaultsPassEverywhere: a default cliFlags is valid on every
// path — spelling no flag can never be a usage error.
func TestFlagDefaultsPassEverywhere(t *testing.T) {
	contexts := pathContexts(4, 3)
	for path := runPath(0); path < numPaths; path++ {
		if err := validateFlags(defaultFlags(), path, contexts); err != nil {
			t.Errorf("defaults rejected on %s: %v", path, err)
		}
	}
}

// TestFlagContextWording pins the specific hints the table carries over
// from the pre-table validation.
func TestFlagContextWording(t *testing.T) {
	contexts := pathContexts(4, 3)
	cases := []struct {
		mutate func(f *cliFlags)
		path   runPath
		want   string
	}{
		{func(f *cliFlags) { f.cache = true }, pathExhaustiveDPOR, dporContext},
		{func(f *cliFlags) { f.ckptOut = "x" }, pathExhaustiveDPOR, dporContext},
		{func(f *cliFlags) { f.jsonOut = true }, pathList, "single-run result object"},
		{func(f *cliFlags) { f.traceOut = "x" }, pathSweep, "not one canonical schedule"},
		{func(f *cliFlags) { f.sampler = "pct" }, pathExhaustive, "raise -n above -exhaustive-n 3"},
		{func(f *cliFlags) { f.maxExecs = 1 }, pathSampled, "raise -exhaustive-n to at least 4"},
		{func(f *cliFlags) { f.progress = time.Second }, pathList, "runs nothing"},
	}
	for _, c := range cases {
		f := defaultFlags()
		c.mutate(f)
		err := validateFlags(f, c.path, contexts)
		if err == nil {
			t.Errorf("%s: expected a rejection", c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("rejection on %s lost its hint %q: %v", c.path, c.want, err)
		}
	}
}

// TestPathStrings keeps the diagnostic names stable.
func TestPathStrings(t *testing.T) {
	want := map[runPath]string{
		pathList: "list", pathSweep: "sweep", pathSampled: "sampled",
		pathExhaustive: "exhaustive", pathExhaustiveDPOR: "exhaustive-dpor",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), w)
		}
	}
}
