// Command tascheck drives the model-checking side of the reproduction: it
// explores interleavings of the speculative test-and-set (exhaustively for
// two processes, seeded-randomly beyond) and checks Lemma 4's invariants,
// linearizability (Theorem 3 / Lemma 7), and the safe-composability
// conditions of Definition 2 on every explored execution.
//
// Usage:
//
//	tascheck                          # invariants, 2 processes, exhaustive
//	tascheck -mode def2 -n 2          # Definition 2 on every interleaving
//	tascheck -mode composed -n 3 -samples 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/linearize"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/tas"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "invariants", "invariants | def2 | composed")
	n := flag.Int("n", 2, "number of processes")
	maxExecs := flag.Int("max", 200000, "max interleavings for exhaustive exploration")
	samples := flag.Int("samples", 3000, "random schedules when n > 2")
	seed := flag.Int64("seed", 1, "base seed for random schedules")
	flag.Parse()

	var h explore.Harness
	switch *mode {
	case "invariants", "def2":
		h = a1Harness(*n, *mode == "def2")
	case "composed":
		h = composedHarness(*n)
	default:
		fmt.Fprintf(os.Stderr, "tascheck: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var rep explore.Report
	var err error
	if *n <= 2 {
		rep, err = explore.Run(h, explore.Config{MaxExecutions: *maxExecs})
	} else {
		rep, err = explore.Sample(h, *samples, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: FAILED after %d executions: %v\n", rep.Executions, err)
		os.Exit(1)
	}
	how := "exhaustive"
	if rep.Partial {
		how = "partial (hit -max)"
	}
	if *n > 2 {
		how = "sampled"
	}
	fmt.Printf("tascheck %s: OK — %d interleavings (%s), max depth %d\n",
		*mode, rep.Executions, how, rep.MaxDepth)
}

func a1Harness(n int, withDef2 bool) explore.Harness {
	return func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error) {
		env := memory.NewEnv(n)
		a1 := tas.NewA1()
		rec := trace.NewRecorder(n)
		winners := 0
		bodies := make([]func(p *memory.Proc), n)
		for i := 0; i < n; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				rec.RecordInvoke(i, m)
				out, resp, sv := a1.Invoke(p, m, nil)
				if out == core.Committed {
					if resp == spec.Winner {
						winners++
					}
					rec.RecordCommit(i, m, resp, "A1")
				} else {
					rec.RecordAbort(i, m, sv, "A1")
				}
			}
		}
		check := func(res *sched.Result) error {
			if winners > 1 {
				return fmt.Errorf("%d winners", winners)
			}
			if err := checkProjection(rec.Ops()); err != nil {
				return err
			}
			if withDef2 {
				return core.CheckDefinition2(spec.TASType{}, tas.MConstraint{}, rec.Events())
			}
			return nil
		}
		return env, bodies, check
	}
}

func composedHarness(n int) explore.Harness {
	return func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error) {
		env := memory.NewEnv(n)
		o := tas.NewOneShot()
		rec := trace.NewRecorder(n)
		winners := 0
		bodies := make([]func(p *memory.Proc), n)
		for i := 0; i < n; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				rec.RecordInvoke(i, m)
				v := o.TestAndSet(p)
				if v == spec.Winner {
					winners++
				}
				rec.RecordCommit(i, m, v, "")
			}
		}
		check := func(res *sched.Result) error {
			if winners != 1 {
				return fmt.Errorf("%d winners", winners)
			}
			return checkProjection(rec.Ops())
		}
		return env, bodies, check
	}
}

// checkProjection runs the TAS linearizability check on the invoke/commit
// projection (aborted operations become pending invocations, Theorem 3).
func checkProjection(ops []trace.Op) error {
	proj := make([]trace.Op, 0, len(ops))
	for _, op := range ops {
		if op.Aborted {
			op.Aborted = false
			op.Pending = true
			op.Ret = 0
		}
		proj = append(proj, op)
	}
	if lr := linearize.CheckTAS(proj); !lr.Ok {
		return fmt.Errorf("not linearizable: %s", lr.Reason)
	}
	return nil
}
