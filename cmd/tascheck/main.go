// Command tascheck drives the model-checking side of the reproduction over
// the scenario registry (internal/scenario): every checkable workload —
// the speculative test-and-set and its compositions, the consensus,
// snapshot and splitter substrates, the universal construction, the
// example workloads, and the seeded composition generator's gen:<seed>
// family — is a named scenario built on demand and explored exhaustively
// up to three processes (seeded-randomly beyond), with its oracle checked
// on every explored execution.
//
// Exploration runs on the unified engine core (internal/engine) through
// its exhaustive frontend: -workers sets the worker pool and -prune picks
// the partial-order reduction — source-DPOR race-driven backtracking
// (dpor, the default), the legacy sleep sets (sleep, which reproduces
// every count pinned before the engine unification), or none. -cache adds
// state-fingerprint caching in a cache shared across all workers (sleep or
// none only; see DESIGN.md for its soundness caveats), and -crashes adds
// crash branches at every decision point (seeded crash injection on the
// sampled path). -snapshots selects branch restoration from memory
// snapshots (auto restores wherever the scenario's registered objects all
// support it; off forces prefix re-execution; the two paths explore
// identical trees, so only the advisory replay counters move). Long explorations survive interruption: -timebudget cuts
// the walk after a wall-clock budget, -checkpoint-out saves the unexplored
// frontier, and -checkpoint-in resumes from it (sleep or none only:
// source-DPOR backtracking state is not serializable).
//
// Beyond -exhaustive-n processes the checker switches to the randomized
// frontend (internal/randexp): -sampler picks the scheduling distribution
// (uniform random, PCT with -pct-depth change points, the bias-corrected
// random walk, or rate-weighted stochastic scheduling with -rates),
// sampling runs on -workers parallel pooled executors with results —
// including the canonical failing seed — independent of the worker count,
// and -saturation stops early once coverage (distinct terminal states and
// schedule shapes) plateaus.
//
// -json prints the single-run result as one JSON object (scenario, mode,
// counts, verdict, canonical failure) for parity with composebench -json;
// the exit code still distinguishes ok (0) from failure (1).
//
// -scenario all runs the parallel sweep: every registered scenario,
// exhaustive below -exhaustive-n and sampled above, budgeted per scenario
// by -max and -samples, one deterministic report row each (byte-identical
// for every -workers value). -list prints the registry.
//
// Usage:
//
//	tascheck                          # scenario a1, 2 processes, exhaustive
//	tascheck -list
//	tascheck -scenario composed -n 3 -crashes
//	tascheck -scenario composed -n 3 -prune sleep    # legacy pinned counts
//	tascheck -scenario gen:7 -n 2     # a generated composition
//	tascheck -scenario a1 -n 2 -json
//	tascheck -scenario all -n 2 -max 20000 -samples 500 -workers 8
//	tascheck -scenario composed -n 5 -sampler pct -samples 5000 -workers 8
//	tascheck -scenario composed -n 8 -sampler rates -rates 8,1 -saturation 5
//	tascheck -scenario composed -n 4 -exhaustive-n 4 -prune sleep -timebudget 30s -checkpoint-out f.json
//	tascheck -scenario composed -n 4 -exhaustive-n 4 -prune sleep -checkpoint-in f.json -workers 16
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/explore"
	"repro/internal/randexp"
	"repro/internal/scenario"
)

func main() {
	mode := flag.String("mode", "", "legacy scenario alias: invariants | def2 | composed (prefer -scenario)")
	scenarioName := flag.String("scenario", "", "scenario to check: a registered name, gen:<seed>, or 'all' for the sweep (see -list)")
	list := flag.Bool("list", false, "print every registered and generator scenario with its oracle, then exit")
	n := flag.Int("n", 0, "number of processes (0 = the scenario's default)")
	maxExecs := flag.Int("max", defMax, "max execution attempts for exhaustive exploration (per scenario in a sweep)")
	samples := flag.Int("samples", defSamples, "sampled schedules when n > -exhaustive-n (per scenario in a sweep)")
	seed := flag.Int64("seed", defSeed, "base seed for sampled schedules")
	sampler := flag.String("sampler", defSampler, "sampled-mode scheduler: random | pct | walk | rates")
	pctDepth := flag.Int("pct-depth", randexp.DefaultPCTDepth, "PCT bug-depth parameter d (d-1 priority change points)")
	rates := flag.String("rates", "", "comma-separated per-process rate weights for -sampler rates (later processes reuse the last weight)")
	saturation := flag.Int("saturation", 0, "stop sampling after this many consecutive batches with no new coverage (0 = off)")
	workers := flag.Int("workers", defWorkers, "parallel exploration workers (parallel scenarios in a sweep)")
	prune := flag.String("prune", defPrune, "partial-order reduction: dpor (source-DPOR) | sleep (legacy sleep sets) | none")
	lincheck := flag.String("lincheck", defLincheck, "linearizability checker dispatch: auto (TAS fast path, brute ≤64 ops, JIT beyond) | brute | jit")
	cache := flag.Bool("cache", false, "state-fingerprint caching, shared across workers (requires -prune sleep or none; see DESIGN.md caveats)")
	crashes := flag.Bool("crashes", false, "explore crash branches at every decision point")
	snapshots := flag.String("snapshots", defSnapshots, "snapshot-based branch restoration: auto (when supported) | on | off")
	failFast := flag.Bool("failfast", false, "stop at the first failing schedule instead of the canonical one")
	exhaustiveN := flag.Int("exhaustive-n", 3, "largest n explored exhaustively rather than sampled")
	timeBudget := flag.Duration("timebudget", 0, "stop the exhaustive walk after this wall-clock budget (0 = none)")
	ckptOut := flag.String("checkpoint-out", "", "write the unexplored frontier of a budget-cut walk to this file")
	ckptIn := flag.String("checkpoint-in", "", "resume the walk from a frontier saved by -checkpoint-out")
	jsonOut := flag.Bool("json", false, "print the single-run result as one JSON object (not valid with -scenario all or -list)")
	progress := flag.Duration("progress", 0, "print a live status line (attempts/sec, frontier, ETA) to stderr at this interval (0 = off)")
	events := flag.String("events", "", "write run lifecycle events to this file as JSON lines")
	debugAddr := flag.String("debug-addr", "", "serve /metrics (Prometheus), /statusz (JSON) and /debug/pprof on this address for the run's duration")
	traceOut := flag.String("trace-out", "", "write a failing interleaving as a Chrome trace-event JSON file (viewable in Perfetto)")
	flag.Parse()

	pruneMode, err := explore.ParsePruneMode(*prune)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	snapMode, err := explore.ParseSnapshotMode(*snapshots)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	if *lincheck == "online" || *lincheck == "post" {
		fmt.Fprintf(os.Stderr, "tascheck: -lincheck %s is a stress-tier streaming mode; use stresscheck -lincheck %s (tascheck dispatches auto, brute or jit)\n", *lincheck, *lincheck)
		os.Exit(2)
	}
	linDispatch, err := scenario.ParseLinDispatch(*lincheck)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	scenario.SetLinDispatch(linDispatch)
	cf := &cliFlags{
		sampler:    *sampler,
		pctDepth:   *pctDepth,
		rates:      *rates,
		saturation: *saturation,
		maxExecs:   *maxExecs,
		samples:    *samples,
		seed:       *seed,
		prune:      pruneMode,
		lincheck:   *lincheck,
		cache:      *cache,
		ckptOut:    *ckptOut,
		ckptIn:     *ckptIn,
		timeBudget: *timeBudget,
		snapshots:  snapMode,
		failFast:   *failFast,
		jsonOut:    *jsonOut,
		progress:   *progress,
		events:     *events,
		debugAddr:  *debugAddr,
		traceOut:   *traceOut,
	}
	validate := func(path runPath, procs int) {
		if verr := validateFlags(cf, path, pathContexts(procs, *exhaustiveN)); verr != nil {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", verr)
			os.Exit(2)
		}
	}

	if *list {
		validate(pathList, 0)
		fmt.Print(scenario.Listing())
		return
	}

	name := *scenarioName
	if name == "" {
		// Legacy -mode spelling: map onto the registry so existing
		// invocations keep working.
		switch m := *mode; m {
		case "", "invariants":
			name = "a1"
		case "def2", "composed":
			name = m
		default:
			exitWithListing("unknown mode %q", m)
		}
	} else if *mode != "" {
		fmt.Fprintln(os.Stderr, "tascheck: -mode and -scenario are aliases; pass only one")
		os.Exit(2)
	}

	if name == "all" {
		validate(pathSweep, 0)
		runSweep(cf, *n, *exhaustiveN, *maxExecs, *samples, *seed, *workers, *crashes, snapMode)
		return
	}

	sc, err := scenario.Lookup(name)
	if err != nil {
		exitWithListing("%v", err)
	}
	procs := sc.Procs(*n)
	if *crashes && !sc.Params.Crashes {
		fmt.Fprintf(os.Stderr, "tascheck: scenario %s does not support -crashes (its checks assume every process completes)\n", sc.Name)
		os.Exit(2)
	}
	opts := scenario.Options{Crashes: *crashes}
	h, oracle := sc.Build(procs, opts)

	if procs > *exhaustiveN {
		// The sampled path has no frontier, budget or fingerprint cache;
		// reject rather than silently ignore the flags, so a user who meant
		// to resume or budget an exhaustive walk learns to raise
		// -exhaustive-n instead of reading a vacuous OK.
		validate(pathSampled, procs)
		runSampled(cf, h, sc, procs, oracle, *workers, *crashes, opts)
		return
	}
	// Symmetrically, the sampler knobs mean nothing on an exhaustive walk,
	// and source-DPOR cannot honour the cache or checkpoint flags.
	path := pathExhaustive
	if pruneMode == explore.PruneSourceDPOR {
		path = pathExhaustiveDPOR
	}
	validate(path, procs)

	session, err := newObsSession(cf, *workers, map[string]string{
		"scenario": sc.Name, "n": fmt.Sprintf("%d", procs),
		"mode": "exhaustive", "prune": pruneMode.String(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	if *progress > 0 {
		// A short walk-sampler probe on a fresh harness instance yields a
		// Knuth estimate of the full tree — an exact attempts target under
		// -prune none, an upper bound under any reduction.
		session.startProgress(*progress, estimateTree(sc, procs, opts), pruneMode != explore.PruneNone, sc.Name)
	}

	cfg := explore.Config{
		MaxExecutions: *maxExecs,
		TimeBudget:    *timeBudget,
		Crashes:       *crashes,
		Workers:       *workers,
		Prune:         pruneMode,
		CacheStates:   *cache,
		FailFast:      *failFast,
		Snapshots:     snapMode,
		Metrics:       session.metrics(),
	}
	if *ckptIn != "" {
		cfg.Resume, err = loadCheckpoint(*ckptIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
			os.Exit(2)
		}
	}
	rep, err := explore.Run(h, cfg)
	if rep.Checkpoint != nil && *ckptOut != "" {
		if werr := saveCheckpoint(*ckptOut, rep.Checkpoint); werr != nil {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", werr)
			os.Exit(2)
		}
		session.event("checkpoint_saved", map[string]any{"path": *ckptOut, "items": len(rep.Checkpoint.Items)})
		fmt.Fprintf(os.Stderr, "tascheck: frontier checkpoint (%d items) saved to %s; resume with -checkpoint-in %s\n",
			len(rep.Checkpoint.Items), *ckptOut, *ckptOut)
	}
	session.close(verdictOf(err))
	var ce *explore.CheckError
	if errors.As(err, &ce) && *traceOut != "" {
		if terr := writeTraceOut(*traceOut, sc, procs, opts, ce.Schedule); terr != nil {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", terr)
		}
	}
	how := "exhaustive"
	if *ckptIn != "" {
		how = "resumed"
	}
	if rep.Partial {
		how = "exhaustive-partial"
	}
	if *jsonOut {
		printJSON(scenario.ExhaustiveResult(sc.Name, procs, oracle, pruneMode, snapMode, how, rep, err))
		if err != nil {
			os.Exit(1)
		}
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: FAILED after %d executions: %v\n", rep.Executions, err)
		if sc.Params.ExpectFail {
			fmt.Fprintf(os.Stderr, "tascheck: (scenario %s plants this bug; finding it is the expected outcome)\n", sc.Name)
		}
		os.Exit(1)
	}
	if rep.Partial {
		how = "partial (hit -max or -timebudget)"
	}
	fmt.Printf("tascheck %s (n=%d, oracle %s, prune %s): OK — %d interleavings (%s), %d pruned as redundant, %d backtracks, %d state-cache hits, %d prefix replays, %d snapshot restores, max depth %d\n",
		sc.Name, procs, oracle, pruneMode, rep.Executions, how, rep.Pruned, rep.Backtracks, rep.CacheHits, rep.Replays, rep.SnapshotRestores, rep.MaxDepth)
}

// verdictOf folds a run error into the run_end event's verdict field.
func verdictOf(err error) string {
	if err == nil {
		return "ok"
	}
	var ce *explore.CheckError
	if errors.As(err, &ce) {
		return "fail"
	}
	return "error"
}

// printJSON emits one indented JSON object on stdout.
func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(string(data))
}

// exitWithListing prints the error followed by the scenario registry, the
// fix for nearly every unknown-name mistake, and exits with a usage error.
func exitWithListing(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tascheck: "+format+"\n\navailable scenarios:\n\n", args...)
	fmt.Fprint(os.Stderr, scenario.Listing())
	os.Exit(2)
}

// runSweep drives the registry-wide parallel sweep and prints its
// deterministic report.
func runSweep(cf *cliFlags, n, exhaustiveN, maxExecs, samples int, seed int64, workers int, crashes bool, snaps explore.SnapshotMode) {
	session, serr := newObsSession(cf, workers, map[string]string{"mode": "sweep"})
	if serr != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", serr)
		os.Exit(2)
	}
	session.startProgress(cf.progress, 0, false, "sweep")
	cfg := scenario.SweepConfig{
		N:             n,
		ExhaustiveN:   exhaustiveN,
		MaxExecutions: maxExecs,
		Samples:       samples,
		Seed:          seed,
		Workers:       workers,
		Crashes:       crashes,
		Snapshots:     snaps,
		Metrics:       session.metrics(),
	}
	rows, err := scenario.Sweep(scenario.Registered(), cfg)
	session.close(verdictOf(err))
	fmt.Print(scenario.Render(rows))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(1)
	}
}

// runSampled drives the randomized frontend for process counts beyond the
// exhaustive range and prints its coverage-aware summary.
func runSampled(cf *cliFlags, h explore.Harness, sc scenario.Scenario, procs int, oracle scenario.Oracle, workers int, crashes bool, opts scenario.Options) {
	kind, err := randexp.ParseSampler(cf.sampler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	weights, err := parseRates(cf.rates)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	session, serr := newObsSession(cf, workers, map[string]string{
		"scenario": sc.Name, "n": fmt.Sprintf("%d", procs),
		"mode": "sampled", "sampler": string(kind),
	})
	if serr != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", serr)
		os.Exit(2)
	}
	// The sample count is an exact total for the ETA (saturation or a
	// failing batch may legitimately finish sooner).
	session.startProgress(cf.progress, float64(cf.samples), false, sc.Name)
	cfg := randexp.Config{
		Sampler:    kind,
		Samples:    cf.samples,
		Seed:       cf.seed,
		Workers:    workers,
		PCTDepth:   cf.pctDepth,
		Rates:      weights,
		SatBatches: cf.saturation,
		Metrics:    session.metrics(),
	}
	if crashes {
		cfg.CrashProb = explore.SampleCrashProb
	}
	rep, err := randexp.Run(h, cfg)
	session.close(verdictOf(err))
	var ceTrace *randexp.CheckError
	if errors.As(err, &ceTrace) && cf.traceOut != "" {
		if terr := writeTraceOut(cf.traceOut, sc, procs, opts, ceTrace.Schedule); terr != nil {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", terr)
		}
	}
	if cf.jsonOut {
		printJSON(scenario.SampledResult(sc.Name, procs, oracle, string(kind), rep, err))
		if err != nil {
			os.Exit(1)
		}
		return
	}
	if err != nil {
		var ce *randexp.CheckError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "tascheck: FAILED after %d sampled executions: seed %d reproduces it (schedule %v): %v\n",
				rep.Executions, ce.Seed, ce.Schedule, ce.Err)
		} else {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		}
		os.Exit(1)
	}
	how := fmt.Sprintf("sampled, %s", kind)
	if kind == randexp.SamplerPCT {
		how = fmt.Sprintf("sampled, pct d=%d k=%d", cf.pctDepth, rep.PCTSteps)
	}
	if rep.Saturated {
		how += ", saturated early"
	}
	states := "unavailable (harness registers no fingerprintable objects)"
	if rep.FingerprintOK {
		states = fmt.Sprintf("%d", rep.DistinctStates)
	}
	fmt.Printf("tascheck %s (oracle %s): OK — %d interleavings (%s), distinct terminal states %s, distinct schedule shapes %d, max depth %d\n",
		sc.Name, oracle, rep.Executions, how, states, rep.DistinctShapes, rep.MaxDepth)
	if kind == randexp.SamplerWalk && rep.TreeSizeEstimate > 0 {
		fmt.Printf("tascheck: walk estimate of total interleavings: %.3g\n", rep.TreeSizeEstimate)
	}
}

// parseRates parses the -rates flag: a comma-separated list of positive
// weights.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -rates entry %q: want positive numbers", p)
		}
		out = append(out, w)
	}
	return out, nil
}

func loadCheckpoint(path string) (*explore.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint: %w", err)
	}
	var ck explore.Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("parsing checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

func saveCheckpoint(path string, ck *explore.Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("encoding checkpoint: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	return nil
}
