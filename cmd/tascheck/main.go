// Command tascheck drives the model-checking side of the reproduction: it
// explores interleavings of the speculative test-and-set (exhaustively up
// to three processes by default, seeded-randomly beyond) and checks Lemma
// 4's invariants, linearizability (Theorem 3 / Lemma 7), and the
// safe-composability conditions of Definition 2 on every explored
// execution.
//
// Exploration runs on the pooled, partial-order-reduced engine of
// internal/explore: -workers sets the worker pool, -prune toggles
// sleep-set pruning (on by default; the engine then skips interleavings
// that only reorder commuting accesses), -cache adds state-fingerprint
// caching on top (see DESIGN.md for its soundness caveats), and -crashes
// adds crash branches at every decision point (seeded crash injection on
// the sampled path). Long explorations survive interruption:
// -timebudget cuts the walk after a wall-clock budget, -checkpoint-out
// saves the unexplored frontier, and -checkpoint-in resumes from it.
//
// Beyond -exhaustive-n processes the checker switches to the randomized
// subsystem (internal/randexp): -sampler picks the scheduling
// distribution (uniform random, PCT with -pct-depth change points, the
// bias-corrected random walk, or rate-weighted stochastic scheduling with
// -rates), sampling runs on -workers parallel pooled executors with
// results — including the canonical failing seed — independent of the
// worker count, and -saturation stops early once coverage (distinct
// terminal states and schedule shapes) plateaus.
//
// Usage:
//
//	tascheck                          # invariants, 2 processes, exhaustive
//	tascheck -mode def2 -n 2          # Definition 2 on every interleaving
//	tascheck -mode composed -n 3 -crashes
//	tascheck -mode composed -n 5 -sampler pct -samples 5000 -workers 8
//	tascheck -mode composed -n 8 -sampler rates -rates 8,1 -saturation 5
//	tascheck -mode composed -n 4 -exhaustive-n 4 -timebudget 30s -checkpoint-out f.json
//	tascheck -mode composed -n 4 -exhaustive-n 4 -checkpoint-in f.json -workers 16
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/linearize"
	"repro/internal/memory"
	"repro/internal/randexp"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/tas"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "invariants", "invariants | def2 | composed")
	n := flag.Int("n", 2, "number of processes")
	maxExecs := flag.Int("max", 2000000, "max execution attempts for exhaustive exploration")
	samples := flag.Int("samples", 3000, "sampled schedules when n > -exhaustive-n")
	seed := flag.Int64("seed", 1, "base seed for sampled schedules")
	sampler := flag.String("sampler", "random", "sampled-mode scheduler: random | pct | walk | rates")
	pctDepth := flag.Int("pct-depth", randexp.DefaultPCTDepth, "PCT bug-depth parameter d (d-1 priority change points)")
	rates := flag.String("rates", "", "comma-separated per-process rate weights for -sampler rates (later processes reuse the last weight)")
	saturation := flag.Int("saturation", 0, "stop sampling after this many consecutive batches with no new coverage (0 = off)")
	workers := flag.Int("workers", 8, "parallel exploration workers")
	prune := flag.Bool("prune", true, "sleep-set partial-order reduction")
	cache := flag.Bool("cache", false, "state-fingerprint caching (see DESIGN.md caveats)")
	crashes := flag.Bool("crashes", false, "explore crash branches at every decision point")
	failFast := flag.Bool("failfast", false, "stop at the first failing schedule instead of the canonical one")
	exhaustiveN := flag.Int("exhaustive-n", 3, "largest n explored exhaustively rather than sampled")
	timeBudget := flag.Duration("timebudget", 0, "stop the exhaustive walk after this wall-clock budget (0 = none)")
	ckptOut := flag.String("checkpoint-out", "", "write the unexplored frontier of a budget-cut walk to this file")
	ckptIn := flag.String("checkpoint-in", "", "resume the walk from a frontier saved by -checkpoint-out")
	flag.Parse()

	var h explore.Harness
	switch *mode {
	case "invariants", "def2":
		h = a1Harness(*n, *mode == "def2", *crashes)
	case "composed":
		h = composedHarness(*n, *crashes)
	default:
		fmt.Fprintf(os.Stderr, "tascheck: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *n > *exhaustiveN {
		// The sampled path has no frontier, budget or fingerprint cache;
		// reject rather than silently ignore the flags, so a user who meant
		// to resume or budget an exhaustive walk learns to raise
		// -exhaustive-n instead of reading a vacuous OK.
		for flagName, set := range map[string]bool{
			"-timebudget":     *timeBudget != 0,
			"-checkpoint-out": *ckptOut != "",
			"-checkpoint-in":  *ckptIn != "",
			"-cache":          *cache,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "tascheck: %s applies only to exhaustive exploration; raise -exhaustive-n to at least %d or lower -n\n", flagName, *n)
				os.Exit(2)
			}
		}
		runSampled(h, *mode, *sampler, *samples, *seed, *workers, *crashes, *pctDepth, *rates, *saturation)
		return
	}
	// Symmetrically, the sampler knobs mean nothing on an exhaustive walk.
	for flagName, set := range map[string]bool{
		"-sampler":    *sampler != "random",
		"-pct-depth":  *pctDepth != randexp.DefaultPCTDepth,
		"-rates":      *rates != "",
		"-saturation": *saturation != 0,
	} {
		if set {
			fmt.Fprintf(os.Stderr, "tascheck: %s applies only to sampled exploration; raise -n above -exhaustive-n %d\n", flagName, *exhaustiveN)
			os.Exit(2)
		}
	}

	var err error
	cfg := explore.Config{
		MaxExecutions: *maxExecs,
		TimeBudget:    *timeBudget,
		Crashes:       *crashes,
		Workers:       *workers,
		Prune:         *prune,
		CacheStates:   *cache,
		FailFast:      *failFast,
	}
	if *ckptIn != "" {
		cfg.Resume, err = loadCheckpoint(*ckptIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
			os.Exit(2)
		}
	}
	rep, err := explore.Run(h, cfg)
	if rep.Checkpoint != nil && *ckptOut != "" {
		if werr := saveCheckpoint(*ckptOut, rep.Checkpoint); werr != nil {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", werr)
			os.Exit(2)
		}
		fmt.Printf("tascheck: frontier checkpoint (%d items) saved to %s; resume with -checkpoint-in %s\n",
			len(rep.Checkpoint.Items), *ckptOut, *ckptOut)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: FAILED after %d executions: %v\n", rep.Executions, err)
		os.Exit(1)
	}
	how := "exhaustive"
	if *ckptIn != "" {
		how = "resumed"
	}
	if rep.Partial {
		how = "partial (hit -max or -timebudget)"
	}
	fmt.Printf("tascheck %s: OK — %d interleavings (%s), %d pruned as redundant, %d state-cache hits, max depth %d\n",
		*mode, rep.Executions, how, rep.Pruned, rep.CacheHits, rep.MaxDepth)
}

// runSampled drives the randomized subsystem for process counts beyond the
// exhaustive range and prints its coverage-aware summary.
func runSampled(h explore.Harness, mode, sampler string, samples int, seed int64, workers int, crashes bool, pctDepth int, rates string, saturation int) {
	kind, err := randexp.ParseSampler(sampler)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	weights, err := parseRates(rates)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		os.Exit(2)
	}
	cfg := randexp.Config{
		Sampler:    kind,
		Samples:    samples,
		Seed:       seed,
		Workers:    workers,
		PCTDepth:   pctDepth,
		Rates:      weights,
		SatBatches: saturation,
	}
	if crashes {
		cfg.CrashProb = explore.SampleCrashProb
	}
	rep, err := randexp.Run(randexp.Harness(h), cfg)
	if err != nil {
		var ce *randexp.CheckError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "tascheck: FAILED after %d sampled executions: seed %d reproduces it (schedule %v): %v\n",
				rep.Executions, ce.Seed, ce.Schedule, ce.Err)
		} else {
			fmt.Fprintf(os.Stderr, "tascheck: %v\n", err)
		}
		os.Exit(1)
	}
	how := fmt.Sprintf("sampled, %s", kind)
	if kind == randexp.SamplerPCT {
		how = fmt.Sprintf("sampled, pct d=%d k=%d", pctDepth, rep.PCTSteps)
	}
	if rep.Saturated {
		how += ", saturated early"
	}
	states := "unavailable (harness registers no fingerprintable objects)"
	if rep.FingerprintOK {
		states = fmt.Sprintf("%d", rep.DistinctStates)
	}
	fmt.Printf("tascheck %s: OK — %d interleavings (%s), distinct terminal states %s, distinct schedule shapes %d, max depth %d\n",
		mode, rep.Executions, how, states, rep.DistinctShapes, rep.MaxDepth)
	if kind == randexp.SamplerWalk && rep.TreeSizeEstimate > 0 {
		fmt.Printf("tascheck: walk estimate of total interleavings: %.3g\n", rep.TreeSizeEstimate)
	}
}

// parseRates parses the -rates flag: a comma-separated list of positive
// weights.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -rates entry %q: want positive numbers", p)
		}
		out = append(out, w)
	}
	return out, nil
}

func loadCheckpoint(path string) (*explore.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint: %w", err)
	}
	var ck explore.Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("parsing checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

func saveCheckpoint(path string, ck *explore.Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("encoding checkpoint: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	return nil
}

func a1Harness(n int, withDef2, crashes bool) explore.Harness {
	return func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error, func()) {
		env := memory.NewEnv(n)
		a1 := tas.NewA1()
		env.Register(a1)
		rec := trace.NewRecorder(n)
		bodies := make([]func(p *memory.Proc), n)
		for i := 0; i < n; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				rec.RecordInvoke(i, m)
				out, resp, sv := a1.Invoke(p, m, nil)
				if out == core.Committed {
					rec.RecordCommit(i, m, resp, "A1")
				} else {
					rec.RecordAbort(i, m, sv, "A1")
				}
			}
		}
		check := func(res *sched.Result) error {
			if err := checkWinners(rec.Ops()); err != nil {
				return err
			}
			if crashes {
				if err := checkSurvivors(res, n); err != nil {
					return err
				}
			}
			if err := checkProjection(rec.Ops()); err != nil {
				return err
			}
			if withDef2 {
				return core.CheckDefinition2(spec.TASType{}, tas.MConstraint{}, rec.Events())
			}
			return nil
		}
		return env, bodies, check, rec.Reset
	}
}

func composedHarness(n int, crashes bool) explore.Harness {
	return func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error, func()) {
		env := memory.NewEnv(n)
		o := tas.NewOneShot()
		env.Register(o)
		rec := trace.NewRecorder(n)
		bodies := make([]func(p *memory.Proc), n)
		for i := 0; i < n; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				rec.RecordInvoke(i, m)
				v := o.TestAndSet(p)
				rec.RecordCommit(i, m, v, "")
			}
		}
		check := func(res *sched.Result) error {
			if err := checkWinners(rec.Ops()); err != nil {
				return err
			}
			if !crashes {
				// Wait-freedom: without crashes every process completes, so
				// exactly one winner must have committed.
				winners := 0
				for _, op := range rec.Ops() {
					if op.Committed() && op.Resp == spec.Winner {
						winners++
					}
				}
				if winners != 1 {
					return fmt.Errorf("%d winners", winners)
				}
			} else if err := checkSurvivors(res, n); err != nil {
				return err
			}
			return checkProjection(rec.Ops())
		}
		return env, bodies, check, rec.Reset
	}
}

// checkWinners enforces the at-most-one-winner safety property over the
// committed operations (under crashes a winner may be missing: it crashed
// mid-operation or never ran, so only the upper bound is universal).
func checkWinners(ops []trace.Op) error {
	winners := 0
	for _, op := range ops {
		if op.Committed() && op.Resp == spec.Winner {
			winners++
		}
	}
	if winners > 1 {
		return fmt.Errorf("%d winners", winners)
	}
	return nil
}

// checkSurvivors enforces crash-mode liveness: every process the scheduler
// did not crash must have run to completion.
func checkSurvivors(res *sched.Result, n int) error {
	for i := 0; i < n; i++ {
		if !res.Crashed[i] && !res.Finished[i] {
			return fmt.Errorf("survivor %d did not finish", i)
		}
	}
	return nil
}

// checkProjection runs the TAS linearizability check on the invoke/commit
// projection (aborted operations become pending invocations, Theorem 3).
func checkProjection(ops []trace.Op) error {
	proj := make([]trace.Op, 0, len(ops))
	for _, op := range ops {
		if op.Aborted {
			op.Aborted = false
			op.Pending = true
			op.Ret = 0
		}
		proj = append(proj, op)
	}
	if lr := linearize.CheckTAS(proj); !lr.Ok {
		return fmt.Errorf("not linearizable: %s", lr.Reason)
	}
	return nil
}
