// Command tascheck drives the model-checking side of the reproduction: it
// explores interleavings of the speculative test-and-set (exhaustively up
// to three processes by default, seeded-randomly beyond) and checks Lemma
// 4's invariants, linearizability (Theorem 3 / Lemma 7), and the
// safe-composability conditions of Definition 2 on every explored
// execution.
//
// Exploration runs on the parallel, partial-order-reduced engine of
// internal/explore: -workers sets the worker pool, -prune toggles
// sleep-set pruning (on by default; the engine then skips interleavings
// that only reorder commuting accesses), and -crashes adds crash branches
// at every decision point.
//
// Usage:
//
//	tascheck                          # invariants, 2 processes, exhaustive
//	tascheck -mode def2 -n 2          # Definition 2 on every interleaving
//	tascheck -mode composed -n 3 -crashes
//	tascheck -mode composed -n 4 -samples 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/linearize"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/tas"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "invariants", "invariants | def2 | composed")
	n := flag.Int("n", 2, "number of processes")
	maxExecs := flag.Int("max", 2000000, "max execution attempts for exhaustive exploration")
	samples := flag.Int("samples", 3000, "random schedules when n > -exhaustive-n")
	seed := flag.Int64("seed", 1, "base seed for random schedules")
	workers := flag.Int("workers", 8, "parallel exploration workers")
	prune := flag.Bool("prune", true, "sleep-set partial-order reduction")
	crashes := flag.Bool("crashes", false, "explore crash branches at every decision point")
	failFast := flag.Bool("failfast", false, "stop at the first failing schedule instead of the canonical one")
	exhaustiveN := flag.Int("exhaustive-n", 3, "largest n explored exhaustively rather than sampled")
	flag.Parse()

	var h explore.Harness
	switch *mode {
	case "invariants", "def2":
		h = a1Harness(*n, *mode == "def2", *crashes)
	case "composed":
		h = composedHarness(*n, *crashes)
	default:
		fmt.Fprintf(os.Stderr, "tascheck: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *crashes && *n > *exhaustiveN {
		// Sampling uses crash-free random schedules, so accepting the flag
		// there would report vacuous crash coverage.
		fmt.Fprintf(os.Stderr, "tascheck: -crashes requires exhaustive exploration; raise -exhaustive-n to at least %d or lower -n\n", *n)
		os.Exit(2)
	}

	var rep explore.Report
	var err error
	if *n <= *exhaustiveN {
		rep, err = explore.Run(h, explore.Config{
			MaxExecutions: *maxExecs,
			Crashes:       *crashes,
			Workers:       *workers,
			Prune:         *prune,
			FailFast:      *failFast,
		})
	} else {
		rep, err = explore.Sample(h, *samples, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tascheck: FAILED after %d executions: %v\n", rep.Executions, err)
		os.Exit(1)
	}
	how := "exhaustive"
	if rep.Partial {
		how = "partial (hit -max)"
	}
	if *n > *exhaustiveN {
		how = "sampled"
	}
	fmt.Printf("tascheck %s: OK — %d interleavings (%s), %d pruned as redundant, max depth %d\n",
		*mode, rep.Executions, how, rep.Pruned, rep.MaxDepth)
}

func a1Harness(n int, withDef2, crashes bool) explore.Harness {
	return func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error) {
		env := memory.NewEnv(n)
		a1 := tas.NewA1()
		rec := trace.NewRecorder(n)
		bodies := make([]func(p *memory.Proc), n)
		for i := 0; i < n; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				rec.RecordInvoke(i, m)
				out, resp, sv := a1.Invoke(p, m, nil)
				if out == core.Committed {
					rec.RecordCommit(i, m, resp, "A1")
				} else {
					rec.RecordAbort(i, m, sv, "A1")
				}
			}
		}
		check := func(res *sched.Result) error {
			if err := checkWinners(rec.Ops()); err != nil {
				return err
			}
			if crashes {
				if err := checkSurvivors(res, n); err != nil {
					return err
				}
			}
			if err := checkProjection(rec.Ops()); err != nil {
				return err
			}
			if withDef2 {
				return core.CheckDefinition2(spec.TASType{}, tas.MConstraint{}, rec.Events())
			}
			return nil
		}
		return env, bodies, check
	}
}

func composedHarness(n int, crashes bool) explore.Harness {
	return func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error) {
		env := memory.NewEnv(n)
		o := tas.NewOneShot()
		rec := trace.NewRecorder(n)
		bodies := make([]func(p *memory.Proc), n)
		for i := 0; i < n; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				rec.RecordInvoke(i, m)
				v := o.TestAndSet(p)
				rec.RecordCommit(i, m, v, "")
			}
		}
		check := func(res *sched.Result) error {
			if err := checkWinners(rec.Ops()); err != nil {
				return err
			}
			if !crashes {
				// Wait-freedom: without crashes every process completes, so
				// exactly one winner must have committed.
				winners := 0
				for _, op := range rec.Ops() {
					if op.Committed() && op.Resp == spec.Winner {
						winners++
					}
				}
				if winners != 1 {
					return fmt.Errorf("%d winners", winners)
				}
			} else if err := checkSurvivors(res, n); err != nil {
				return err
			}
			return checkProjection(rec.Ops())
		}
		return env, bodies, check
	}
}

// checkWinners enforces the at-most-one-winner safety property over the
// committed operations (under crashes a winner may be missing: it crashed
// mid-operation or never ran, so only the upper bound is universal).
func checkWinners(ops []trace.Op) error {
	winners := 0
	for _, op := range ops {
		if op.Committed() && op.Resp == spec.Winner {
			winners++
		}
	}
	if winners > 1 {
		return fmt.Errorf("%d winners", winners)
	}
	return nil
}

// checkSurvivors enforces crash-mode liveness: every process the scheduler
// did not crash must have run to completion.
func checkSurvivors(res *sched.Result, n int) error {
	for i := 0; i < n; i++ {
		if !res.Crashed[i] && !res.Finished[i] {
			return fmt.Errorf("survivor %d did not finish", i)
		}
	}
	return nil
}

// checkProjection runs the TAS linearizability check on the invoke/commit
// projection (aborted operations become pending invocations, Theorem 3).
func checkProjection(ops []trace.Op) error {
	proj := make([]trace.Op, 0, len(ops))
	for _, op := range ops {
		if op.Aborted {
			op.Aborted = false
			op.Pending = true
			op.Ret = 0
		}
		proj = append(proj, op)
	}
	if lr := linearize.CheckTAS(proj); !lr.Ok {
		return fmt.Errorf("not linearizable: %s", lr.Reason)
	}
	return nil
}
