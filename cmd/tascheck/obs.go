package main

// Observability wiring for a tascheck invocation: the -progress, -events
// and -debug-addr flags share one obs.Metrics domain attached to the run's
// engine config. All of it is strictly advisory — the obs equivalence
// tests pin that results are byte-identical with the layer on or off.

import (
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/randexp"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/trace"
)

// obsSession owns the lifecycle of the observability sinks of one run. A
// nil session (no obs flag set) is valid everywhere and does nothing.
type obsSession struct {
	m    *obs.Metrics
	el   *obs.EventLog
	srv  *obs.Server
	prog *obs.Progress
}

// newObsSession builds the domain demanded by the flags, or nil when none
// of -progress, -events, -debug-addr was set. info labels land in the
// Prometheus repro_run_info metric and the /statusz object.
func newObsSession(f *cliFlags, workers int, info map[string]string) (*obsSession, error) {
	if f.progress == 0 && f.events == "" && f.debugAddr == "" {
		return nil, nil
	}
	s := &obsSession{m: obs.New(workers)}
	for k, v := range info {
		s.m.SetInfo(k, v)
	}
	if f.events != "" {
		out, err := os.Create(f.events)
		if err != nil {
			return nil, fmt.Errorf("opening -events file: %w", err)
		}
		s.el = obs.NewEventLog(out)
		s.m.SetEvents(s.el)
		s.m.Event("run_start", map[string]any{"argv": os.Args[1:], "info": info})
	}
	if f.debugAddr != "" {
		srv, err := obs.Serve(f.debugAddr, s.m)
		if err != nil {
			return nil, fmt.Errorf("starting -debug-addr server: %w", err)
		}
		s.srv = srv
		fmt.Fprintf(os.Stderr, "tascheck: debug endpoint on http://%s (/metrics, /statusz, /debug/pprof)\n", srv.Addr)
	}
	return s, nil
}

// metrics is the engine-config hook; nil-safe.
func (s *obsSession) metrics() *obs.Metrics {
	if s == nil {
		return nil
	}
	return s.m
}

// event emits into the session's event log; nil-safe.
func (s *obsSession) event(typ string, fields map[string]any) {
	if s != nil {
		s.m.Event(typ, fields)
	}
}

// startProgress launches the live reporter when -progress asked for one.
func (s *obsSession) startProgress(interval time.Duration, estTotal float64, estUpper bool, label string) {
	if s == nil || interval <= 0 {
		return
	}
	s.prog = obs.StartProgress(obs.ProgressConfig{
		Interval: interval,
		Out:      os.Stderr,
		Metrics:  s.m,
		EstTotal: estTotal,
		EstUpper: estUpper,
		Label:    label,
	})
}

// close tears the sinks down in dependency order: reporter, run_end event,
// event log flush, HTTP server. Errors surface on stderr but never change
// the exit code — observability is advisory.
func (s *obsSession) close(verdict string) {
	if s == nil {
		return
	}
	s.prog.Stop()
	s.m.Event("run_end", map[string]any{"verdict": verdict})
	if s.el != nil {
		if err := s.el.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tascheck: writing -events file: %v\n", err)
		}
	}
	if s.srv != nil {
		s.srv.Close()
	}
}

// estimateTree Knuth-estimates the size of a scenario's interleaving tree
// with a short bias-corrected random-walk probe on a fresh harness
// instance (fresh so the probe's check-state accumulation cannot leak into
// the measured run). Returns 0 — no ETA — when the estimator does not
// apply (crash injection) or the probe finds nothing.
func estimateTree(sc scenario.Scenario, procs int, opts scenario.Options) float64 {
	if opts.Crashes {
		return 0
	}
	h, _ := sc.Build(procs, opts)
	rep, _ := randexp.Run(h, randexp.Config{
		Sampler: randexp.SamplerWalk,
		Samples: 200,
		Seed:    1,
		Workers: 1,
	})
	return rep.TreeSizeEstimate
}

// writeTraceOut renders a failing schedule as a Chrome trace-event JSON
// file. The schedule is replayed on a fresh harness instance to recover
// the per-step access metadata (object, operation kind) the annotations
// need.
func writeTraceOut(path string, sc scenario.Scenario, procs int, opts scenario.Options, schedule []sched.Choice) error {
	h, _ := sc.Build(procs, opts)
	env, bodies, _, _ := h()
	res := sched.Run(env, sched.NewReplay(schedule), bodies)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("opening -trace-out file: %w", err)
	}
	if err := trace.WriteChrome(f, res.Schedule, res.Accesses); err != nil {
		f.Close()
		return fmt.Errorf("writing -trace-out file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing -trace-out file: %w", err)
	}
	fmt.Fprintf(os.Stderr, "tascheck: failing interleaving written to %s (load in ui.perfetto.dev or chrome://tracing)\n", path)
	return nil
}
