package main

// Table-driven flag validation over the shared internal/cliflags core:
// every tascheck invocation resolves to one run path, and every
// path-restricted flag declares — in one table — the paths it applies to.
// See the cliflags package comment for the semantics (value-based
// detection, deterministic first-violation rejection, exit 2).

import (
	"fmt"
	"time"

	"repro/internal/cliflags"
	"repro/internal/explore"
	"repro/internal/randexp"
)

// The flag defaults, shared by the flag declarations in main and the
// changed-from-default detection here.
const (
	defMax       = 2000000
	defSamples   = 3000
	defSeed      = int64(1)
	defSampler   = "random"
	defWorkers   = 8
	defPrune     = "dpor"
	defSnapshots = "auto"
	defLincheck  = "auto"
)

// runPath classifies an invocation by what it runs.
type runPath int

const (
	// pathList prints the registry and runs nothing.
	pathList runPath = iota
	// pathSweep is -scenario all: the registry-wide parallel sweep.
	pathSweep
	// pathSampled is a single scenario with n > -exhaustive-n.
	pathSampled
	// pathExhaustive is a single-scenario walk under -prune sleep or none.
	pathExhaustive
	// pathExhaustiveDPOR is a single-scenario walk under -prune dpor, which
	// additionally excludes the flags source-DPOR cannot honour.
	pathExhaustiveDPOR
	numPaths
)

// String names the path for tests and diagnostics.
func (p runPath) String() string {
	switch p {
	case pathList:
		return "list"
	case pathSweep:
		return "sweep"
	case pathSampled:
		return "sampled"
	case pathExhaustive:
		return "exhaustive"
	case pathExhaustiveDPOR:
		return "exhaustive-dpor"
	}
	return fmt.Sprintf("runPath(%d)", int(p))
}

// cliFlags holds every parsed path-restricted flag value.
type cliFlags struct {
	sampler    string
	pctDepth   int
	rates      string
	saturation int
	maxExecs   int
	samples    int
	seed       int64
	prune      explore.PruneMode
	lincheck   string
	cache      bool
	ckptOut    string
	ckptIn     string
	timeBudget time.Duration
	snapshots  explore.SnapshotMode
	failFast   bool
	jsonOut    bool
	progress   time.Duration
	events     string
	debugAddr  string
	traceOut   string
}

// flagRule is the shared rule type instantiated for this binary.
type flagRule = cliflags.Rule[*cliFlags, runPath]

// on builds an allowed-path set. pathList is implied for the exploration
// knobs a bare -list invocation has always silently ignored; flags that
// demand output (-json and the observability sinks) opt out of it
// explicitly.
func on(paths ...runPath) []bool {
	return cliflags.On(int(numPaths), paths...)
}

// The dpor-specific hint preserved from the pre-table validation.
const dporContext = "source-DPOR exploration; pass -prune sleep (or none) to use these"

// listContext is the -list rejection wording for the output flags.
const listContext = "-list (it prints the registry and runs nothing)"

// flagRules is THE flag-applicability table. Order is the check order, so
// rejections are deterministic when several inapplicable flags are set.
func flagRules() []flagRule {
	dporHint := map[runPath]string{pathExhaustiveDPOR: dporContext}
	return []flagRule{
		{Name: "-sampler", Set: func(f *cliFlags) bool { return f.sampler != defSampler },
			Allowed: on(pathList, pathSampled)},
		{Name: "-pct-depth", Set: func(f *cliFlags) bool { return f.pctDepth != randexp.DefaultPCTDepth },
			Allowed: on(pathList, pathSampled)},
		{Name: "-rates", Set: func(f *cliFlags) bool { return f.rates != "" },
			Allowed: on(pathList, pathSampled)},
		{Name: "-saturation", Set: func(f *cliFlags) bool { return f.saturation != 0 },
			Allowed: on(pathList, pathSampled)},
		{Name: "-max", Set: func(f *cliFlags) bool { return f.maxExecs != defMax },
			Allowed: on(pathList, pathSweep, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-samples", Set: func(f *cliFlags) bool { return f.samples != defSamples },
			Allowed: on(pathList, pathSweep, pathSampled)},
		{Name: "-seed", Set: func(f *cliFlags) bool { return f.seed != defSeed },
			Allowed: on(pathList, pathSweep, pathSampled)},
		{Name: "-prune", Set: func(f *cliFlags) bool { return f.prune != explore.PruneSourceDPOR },
			Allowed: on(pathList, pathExhaustive, pathExhaustiveDPOR)},
		// The checker dispatch applies wherever an oracle actually runs —
		// every path, with -list carrying the usual silently-valid
		// tradition of the workload knobs.
		{Name: "-lincheck", Set: func(f *cliFlags) bool { return f.lincheck != defLincheck },
			Allowed: on(pathList, pathSweep, pathSampled, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-cache", Set: func(f *cliFlags) bool { return f.cache },
			Allowed: on(pathList, pathExhaustive), Context: dporHint},
		{Name: "-checkpoint-out", Set: func(f *cliFlags) bool { return f.ckptOut != "" },
			Allowed: on(pathList, pathExhaustive), Context: dporHint},
		{Name: "-checkpoint-in", Set: func(f *cliFlags) bool { return f.ckptIn != "" },
			Allowed: on(pathList, pathExhaustive), Context: dporHint},
		{Name: "-timebudget", Set: func(f *cliFlags) bool { return f.timeBudget != 0 },
			Allowed: on(pathList, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-snapshots", Set: func(f *cliFlags) bool { return f.snapshots != explore.SnapshotAuto },
			Allowed: on(pathList, pathSweep, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-failfast", Set: func(f *cliFlags) bool { return f.failFast },
			Allowed: on(pathList, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-json", Set: func(f *cliFlags) bool { return f.jsonOut },
			Allowed: on(pathSampled, pathExhaustive, pathExhaustiveDPOR),
			Context: map[runPath]string{pathList: "-list (it is a single-run result object)"}},
		{Name: "-progress", Set: func(f *cliFlags) bool { return f.progress != 0 },
			Allowed: on(pathSweep, pathSampled, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-events", Set: func(f *cliFlags) bool { return f.events != "" },
			Allowed: on(pathSweep, pathSampled, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-debug-addr", Set: func(f *cliFlags) bool { return f.debugAddr != "" },
			Allowed: on(pathSweep, pathSampled, pathExhaustive, pathExhaustiveDPOR)},
		{Name: "-trace-out", Set: func(f *cliFlags) bool { return f.traceOut != "" },
			Allowed: on(pathSampled, pathExhaustive, pathExhaustiveDPOR),
			Context: map[runPath]string{pathSweep: "a scenario sweep (its failures are expected report rows, not one canonical schedule)"}},
	}
}

// pathContexts builds each path's default rejection wording, preserving the
// pre-table messages verbatim. procs and exhaustiveN feed the dynamic
// hints of the sampled and exhaustive contexts.
func pathContexts(procs, exhaustiveN int) map[runPath]string {
	exhaustive := fmt.Sprintf("exhaustive exploration; raise -n above -exhaustive-n %d", exhaustiveN)
	return map[runPath]string{
		pathList:           listContext,
		pathSweep:          "a scenario sweep (sweeps always run source-DPOR on one engine worker per scenario and sample uniformly)",
		pathSampled:        fmt.Sprintf("sampled exploration; raise -exhaustive-n to at least %d or lower -n", procs),
		pathExhaustive:     exhaustive,
		pathExhaustiveDPOR: exhaustive,
	}
}

// validateFlags checks every table rule against the resolved path and
// returns the first violation as the usage error main prints, or nil.
func validateFlags(f *cliFlags, path runPath, contexts map[runPath]string) error {
	return cliflags.Validate(f, path, flagRules(), contexts)
}
