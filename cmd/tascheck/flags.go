package main

// Table-driven flag validation: every tascheck invocation resolves to one
// run path, and every path-restricted flag declares — in one table — the
// paths it applies to. A flag changed from its default on a path it does
// not apply to is a usage error (exit 2), never silently ignored: a user
// who budgets or checkpoints a walk that is actually sampled should learn
// to raise -exhaustive-n, not read a vacuous OK. Detection is value-based
// (changed from the default), so spelling the default explicitly — e.g.
// -prune dpor — stays valid everywhere, exactly as before the table.

import (
	"fmt"
	"time"

	"repro/internal/explore"
	"repro/internal/randexp"
)

// The flag defaults, shared by the flag declarations in main and the
// changed-from-default detection here.
const (
	defMax       = 2000000
	defSamples   = 3000
	defSeed      = int64(1)
	defSampler   = "random"
	defWorkers   = 8
	defPrune     = "dpor"
	defSnapshots = "auto"
)

// runPath classifies an invocation by what it runs.
type runPath int

const (
	// pathList prints the registry and runs nothing.
	pathList runPath = iota
	// pathSweep is -scenario all: the registry-wide parallel sweep.
	pathSweep
	// pathSampled is a single scenario with n > -exhaustive-n.
	pathSampled
	// pathExhaustive is a single-scenario walk under -prune sleep or none.
	pathExhaustive
	// pathExhaustiveDPOR is a single-scenario walk under -prune dpor, which
	// additionally excludes the flags source-DPOR cannot honour.
	pathExhaustiveDPOR
	numPaths
)

// String names the path for tests and diagnostics.
func (p runPath) String() string {
	switch p {
	case pathList:
		return "list"
	case pathSweep:
		return "sweep"
	case pathSampled:
		return "sampled"
	case pathExhaustive:
		return "exhaustive"
	case pathExhaustiveDPOR:
		return "exhaustive-dpor"
	}
	return fmt.Sprintf("runPath(%d)", int(p))
}

// cliFlags holds every parsed path-restricted flag value.
type cliFlags struct {
	sampler    string
	pctDepth   int
	rates      string
	saturation int
	maxExecs   int
	samples    int
	seed       int64
	prune      explore.PruneMode
	cache      bool
	ckptOut    string
	ckptIn     string
	timeBudget time.Duration
	snapshots  explore.SnapshotMode
	failFast   bool
	jsonOut    bool
	progress   time.Duration
	events     string
	debugAddr  string
	traceOut   string
}

// flagRule ties one flag to the run paths it applies to. context entries
// override the path's default wording where a more specific hint exists
// (e.g. the source-DPOR checkpoint restriction).
type flagRule struct {
	name    string
	set     func(f *cliFlags) bool
	allowed [numPaths]bool
	context map[runPath]string
}

// on builds an allowed-path set. pathList is implied for the exploration
// knobs a bare -list invocation has always silently ignored; flags that
// demand output (-json and the observability sinks) opt out of it
// explicitly.
func on(paths ...runPath) [numPaths]bool {
	var a [numPaths]bool
	for _, p := range paths {
		a[p] = true
	}
	return a
}

// The dpor-specific hint preserved from the pre-table validation.
const dporContext = "source-DPOR exploration; pass -prune sleep (or none) to use these"

// listContext is the -list rejection wording for the output flags.
const listContext = "-list (it prints the registry and runs nothing)"

// flagRules is THE flag-applicability table. Order is the check order, so
// rejections are deterministic when several inapplicable flags are set.
func flagRules() []flagRule {
	dporHint := map[runPath]string{pathExhaustiveDPOR: dporContext}
	return []flagRule{
		{name: "-sampler", set: func(f *cliFlags) bool { return f.sampler != defSampler },
			allowed: on(pathList, pathSampled)},
		{name: "-pct-depth", set: func(f *cliFlags) bool { return f.pctDepth != randexp.DefaultPCTDepth },
			allowed: on(pathList, pathSampled)},
		{name: "-rates", set: func(f *cliFlags) bool { return f.rates != "" },
			allowed: on(pathList, pathSampled)},
		{name: "-saturation", set: func(f *cliFlags) bool { return f.saturation != 0 },
			allowed: on(pathList, pathSampled)},
		{name: "-max", set: func(f *cliFlags) bool { return f.maxExecs != defMax },
			allowed: on(pathList, pathSweep, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-samples", set: func(f *cliFlags) bool { return f.samples != defSamples },
			allowed: on(pathList, pathSweep, pathSampled)},
		{name: "-seed", set: func(f *cliFlags) bool { return f.seed != defSeed },
			allowed: on(pathList, pathSweep, pathSampled)},
		{name: "-prune", set: func(f *cliFlags) bool { return f.prune != explore.PruneSourceDPOR },
			allowed: on(pathList, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-cache", set: func(f *cliFlags) bool { return f.cache },
			allowed: on(pathList, pathExhaustive), context: dporHint},
		{name: "-checkpoint-out", set: func(f *cliFlags) bool { return f.ckptOut != "" },
			allowed: on(pathList, pathExhaustive), context: dporHint},
		{name: "-checkpoint-in", set: func(f *cliFlags) bool { return f.ckptIn != "" },
			allowed: on(pathList, pathExhaustive), context: dporHint},
		{name: "-timebudget", set: func(f *cliFlags) bool { return f.timeBudget != 0 },
			allowed: on(pathList, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-snapshots", set: func(f *cliFlags) bool { return f.snapshots != explore.SnapshotAuto },
			allowed: on(pathList, pathSweep, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-failfast", set: func(f *cliFlags) bool { return f.failFast },
			allowed: on(pathList, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-json", set: func(f *cliFlags) bool { return f.jsonOut },
			allowed: on(pathSampled, pathExhaustive, pathExhaustiveDPOR),
			context: map[runPath]string{pathList: "-list (it is a single-run result object)"}},
		{name: "-progress", set: func(f *cliFlags) bool { return f.progress != 0 },
			allowed: on(pathSweep, pathSampled, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-events", set: func(f *cliFlags) bool { return f.events != "" },
			allowed: on(pathSweep, pathSampled, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-debug-addr", set: func(f *cliFlags) bool { return f.debugAddr != "" },
			allowed: on(pathSweep, pathSampled, pathExhaustive, pathExhaustiveDPOR)},
		{name: "-trace-out", set: func(f *cliFlags) bool { return f.traceOut != "" },
			allowed: on(pathSampled, pathExhaustive, pathExhaustiveDPOR),
			context: map[runPath]string{pathSweep: "a scenario sweep (its failures are expected report rows, not one canonical schedule)"}},
	}
}

// pathContexts builds each path's default rejection wording, preserving the
// pre-table messages verbatim. procs and exhaustiveN feed the dynamic
// hints of the sampled and exhaustive contexts.
func pathContexts(procs, exhaustiveN int) map[runPath]string {
	exhaustive := fmt.Sprintf("exhaustive exploration; raise -n above -exhaustive-n %d", exhaustiveN)
	return map[runPath]string{
		pathList:           listContext,
		pathSweep:          "a scenario sweep (sweeps always run source-DPOR on one engine worker per scenario and sample uniformly)",
		pathSampled:        fmt.Sprintf("sampled exploration; raise -exhaustive-n to at least %d or lower -n", procs),
		pathExhaustive:     exhaustive,
		pathExhaustiveDPOR: exhaustive,
	}
}

// validateFlags checks every table rule against the resolved path and
// returns the first violation as the usage error main prints, or nil.
func validateFlags(f *cliFlags, path runPath, contexts map[runPath]string) error {
	for _, r := range flagRules() {
		if r.allowed[path] || !r.set(f) {
			continue
		}
		ctx := contexts[path]
		if c, ok := r.context[path]; ok {
			ctx = c
		}
		return fmt.Errorf("%s does not apply to %s", r.name, ctx)
	}
	return nil
}
