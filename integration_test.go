// Integration tests across the whole stack: the speculative TAS, the
// universal construction, the checkers and the exploration machinery,
// exercised together the way a downstream user would combine them.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/abstract"
	"repro/internal/bench"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/linearize"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/tas"
	"repro/internal/trace"
)

// TestIntegrationComposedTASWithCrashes explores interleavings of the
// composed one-shot TAS including crash branches: a crashed process simply
// stops; survivors must still be wait-free served, with at most one winner
// overall and a linearizable projection (crashed operations count as
// pending).
func TestIntegrationComposedTASWithCrashes(t *testing.T) {
	h := func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error, func()) {
		env := memory.NewEnv(2)
		o := tas.NewOneShot()
		env.Register(o)
		rec := trace.NewRecorder(2)
		bodies := make([]func(p *memory.Proc), 2)
		for i := 0; i < 2; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				rec.RecordInvoke(i, m)
				v := o.TestAndSet(p)
				rec.RecordCommit(i, m, v, "")
			}
		}
		check := func(res *sched.Result) error {
			ops := rec.Ops()
			winners := 0
			for _, op := range ops {
				if op.Committed() && op.Resp == spec.Winner {
					winners++
				}
			}
			if winners > 1 {
				return fmt.Errorf("%d winners", winners)
			}
			// Survivors must have completed (wait-freedom of the tail).
			for i := 0; i < 2; i++ {
				if !res.Crashed[i] && !res.Finished[i] {
					return fmt.Errorf("survivor %d did not finish", i)
				}
			}
			if lr, lerr := linearize.CheckTAS(ops); lerr != nil || !lr.Ok {
				return fmt.Errorf("not linearizable: %s", lr.Reason)
			}
			return nil
		}
		return env, bodies, check, rec.Reset
	}
	rep, err := explore.Run(h, explore.Config{Crashes: true, Prune: explore.PruneSourceDPOR, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("pruned two-process crash exploration should be exhaustive (the seed engine capped out at 60000)")
	}
	t.Logf("composed TAS with crashes: %d interleavings (%d pruned)", rep.Executions, rep.Pruned)
}

// TestIntegrationFullStackSoak drives a three-stage universal queue and a
// long-lived TAS side by side under seeded random schedules, running every
// checker on the recorded traces.
func TestIntegrationFullStackSoak(t *testing.T) {
	const n = 3
	h := func() (*memory.Env, []func(p *memory.Proc), func(res *sched.Result) error, func()) {
		env := memory.NewEnv(n)
		queue := abstract.NewObject(spec.QueueType{}, n,
			abstract.StageSpec{Name: "cf", MkCons: func(int) consensus.Abortable { return consensus.NewSplitConsensus() }},
			abstract.StageSpec{Name: "of", MkCons: func(int) consensus.Abortable { return consensus.NewBakery(n) }},
			abstract.StageSpec{Name: "wf", MkCons: func(int) consensus.Abortable { return consensus.NewCASConsensus() }},
		)
		ll := tas.NewLongLived(n)
		qRec := trace.NewRecorder(n)
		tasRec := trace.NewRecorder(n)
		bodies := make([]func(p *memory.Proc), n)
		for i := 0; i < n; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				// One queue op.
				op := spec.OpEnq
				if i == n-1 {
					op = spec.OpDeq
				}
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: op, Arg: int64(100 + i)}
				qRec.RecordInvoke(i, m)
				out, resp, hist, stage := queue.Invoke(p, m)
				mod := fmt.Sprintf("stage%d", stage)
				if out == abstract.Commit {
					qRec.RecordCommitSV(i, m, resp, hist, mod)
				} else {
					qRec.RecordAbort(i, m, hist, mod)
				}
				// One long-lived TAS op + conditional reset, both recorded
				// so the round can be checked against the resettable
				// sequential specification.
				tm := spec.Request{ID: int64(10 + i), Proc: i, Op: spec.OpTAS}
				tasRec.RecordInvoke(i, tm)
				v := ll.TestAndSet(p)
				tasRec.RecordCommit(i, tm, v, "")
				if v == spec.Winner {
					rm := spec.Request{ID: int64(20 + i), Proc: i, Op: spec.OpReset}
					tasRec.RecordInvoke(i, rm)
					ll.Reset(p)
					tasRec.RecordCommit(i, rm, 0, "")
				}
			}
		}
		check := func(res *sched.Result) error {
			if err := abstract.CheckTrace(qRec.Events()); err != nil {
				return fmt.Errorf("queue Abstract properties: %w", err)
			}
			var committed []trace.Op
			for _, op := range qRec.Ops() {
				if op.Committed() {
					committed = append(committed, op)
				}
			}
			if lr, lerr := linearize.Check(spec.QueueType{}, committed); lerr != nil {
				return fmt.Errorf("queue projection: %w", lerr)
			} else if !lr.Ok {
				return fmt.Errorf("queue projection not linearizable: %s", lr.Reason)
			}
			// The long-lived object with resets linearizes against the
			// resettable TAS type (Theorem 4), checked with the generic
			// checker since CheckTAS models only one-shot instances.
			if lr, lerr := linearize.Check(spec.TASType{}, tasRec.Ops()); lerr != nil {
				return fmt.Errorf("TAS round: %w", lerr)
			} else if !lr.Ok {
				return fmt.Errorf("TAS round not linearizable: %s", lr.Reason)
			}
			return nil
		}
		// The universal-construction side has no reset path; sample via
		// per-execution reconstruction.
		return env, bodies, check, nil
	}
	if _, err := explore.Sample(h, 600, 31, false); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationDefinition2OnLongLivedRound checks safe composability of
// the per-module traces produced by one contended round of the long-lived
// object, rebuilt through core.Composition (the checker needs per-module
// events, which the packaged OneShot does not record).
func TestIntegrationDefinition2OnLongLivedRound(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		env := memory.NewEnv(2)
		recA1 := trace.NewRecorder(2)
		recA2 := trace.NewRecorder(2)
		comp := core.NewComposition(tas.NewA1(), tas.NewA2()).WithRecorders(recA1, recA2)
		bodies := make([]func(p *memory.Proc), 2)
		for i := 0; i < 2; i++ {
			i := i
			bodies[i] = func(p *memory.Proc) {
				m := spec.Request{ID: int64(i + 1), Proc: i, Op: spec.OpTAS}
				comp.Invoke(p, m)
			}
		}
		sched.Run(env, sched.NewRandom(seed), bodies)
		if err := core.CheckDefinition2(spec.TASType{}, tas.MConstraint{}, recA1.Events()); err != nil {
			t.Fatalf("seed %d, A1 trace: %v", seed, err)
		}
		if err := core.CheckDefinition2(spec.TASType{}, tas.MConstraint{}, recA2.Events()); err != nil {
			t.Fatalf("seed %d, A2 trace: %v", seed, err)
		}
	}
}

// TestIntegrationExperimentsRunnable smoke-runs every registered experiment
// driver end to end (the per-experiment shape assertions live in
// internal/bench; this guards the composebench surface itself).
func TestIntegrationExperimentsRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range benchAll() {
		tables := e.Run()
		if len(tables) == 0 {
			t.Fatalf("experiment %s produced no tables", e.ID)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 || tab.Markdown() == "" {
				t.Fatalf("experiment %s produced an empty table", e.ID)
			}
		}
	}
}

// benchAll re-exports the experiment registry for the smoke test.
func benchAll() []bench.Experiment { return bench.All() }
