// The biased-lock reading of the speculative TAS (Section 1 of the paper):
// "a simple efficient version of a biased lock, that uses only registers as
// long as a single process is using it, and reverts to the hardware
// implementation only under step contention".
//
// A single owner thread reacquires each lock flavour many times; we count
// shared-memory steps and RMW (fence) operations per acquire/release cycle.
// Then a second thread barges in once, and we show what the disturbance
// costs each flavour.
//
// Run with: go run ./examples/biasedlock
package main

import (
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/memory"
	"repro/internal/scenario"
	"repro/internal/tas"
)

const cycles = 10000

func main() {
	fmt.Println("uncontended reacquisition cost (owner thread only):")
	fmt.Printf("  %-28s %12s %12s\n", "lock flavour", "steps/cycle", "RMW/cycle")

	env := memory.NewEnv(2)

	// Speculative TAS as a lock: acquire = test-and-set (win), release =
	// reset. Rounds preallocated so array materialization is off-path.
	ll := tas.NewLongLived(2)
	ll.Preallocate(env.Proc(0), cycles+4)
	report(env, "speculative TAS (paper)", func(p *memory.Proc) {
		ll.TestAndSet(p)
		ll.Reset(p)
	})

	// Biased lock: Dekker-handshake fast path.
	bl := baseline.NewBiasedLock(2)
	bl.Lock(env.Proc(0))
	bl.Unlock(env.Proc(0)) // claim the bias (one CAS, once)
	report(env, "biased lock [9]", func(p *memory.Proc) {
		bl.Lock(p)
		bl.Unlock(p)
	})

	// TTAS lock: one CAS per acquisition, always.
	tt := baseline.NewTTASLock()
	report(env, "TTAS lock", func(p *memory.Proc) {
		tt.Lock(p)
		tt.Unlock(p)
	})

	// Hardware TAS rounds: one hardware RMW per acquisition, always.
	hw := baseline.NewHardwareLongLived(2)
	hw.Preallocate(env.Proc(0), cycles+4)
	report(env, "hardware TAS", func(p *memory.Proc) {
		hw.TestAndSet(p)
		hw.Reset(p)
	})

	// Disturbance: the second thread takes the speculative TAS once.
	fmt.Println("\nafter a contended takeover of the speculative TAS:")
	p0, p1 := env.Proc(0), env.Proc(1)
	v := ll.TestAndSet(p0) // p0 wins the current round
	_ = v
	p1.ResetCounters()
	_, module := ll.TestAndSetTraced(p1)
	fmt.Printf("  intruder: served by module %d (0=A1 registers, 1=A2 hardware), %d RMW\n",
		module, p1.RMWs())
	ll.Reset(p0)
	p0.ResetCounters()
	ll.TestAndSet(p0)
	fmt.Printf("  owner after reset: back on the fast path with %d RMW\n", p0.RMWs())

	// The measurements above are one schedule each; the registered scenario
	// checks the lock's mutual exclusion over every interleaving of an
	// owner-plus-intruder workload.
	fmt.Println()
	line, ok := scenario.VerifyLine("biasedlock", 2, 0)
	fmt.Println(line)
	if !ok {
		os.Exit(1)
	}
}

func report(env *memory.Env, name string, cycle func(p *memory.Proc)) {
	p := env.Proc(0)
	cycle(p) // warmup
	p.ResetCounters()
	for i := 0; i < cycles; i++ {
		cycle(p)
	}
	fmt.Printf("  %-28s %12.1f %12.2f\n", name,
		float64(p.Steps())/cycles, float64(p.RMWs())/cycles)
}
