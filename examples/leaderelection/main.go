// Leader election with the long-lived resettable test-and-set
// (Algorithm 2 of the paper).
//
// Workers repeatedly compete for a leadership term: the test-and-set winner
// of each round becomes the leader, performs a unit of work, and steps down
// by resetting the object — which both reopens the election and reverts the
// algorithm to its speculative register-only module (the back edge of the
// paper's Figure 1). The run prints, per worker, how many terms it led and
// how much of its traffic stayed on the register fast path.
//
// Run with: go run ./examples/leaderelection
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/memory"
	"repro/internal/scenario"
	"repro/internal/spec"
	"repro/internal/tas"
)

func main() {
	const (
		workers = 6
		terms   = 200
	)
	env := memory.NewEnv(workers)
	election := tas.NewLongLived(workers)
	election.Preallocate(env.Proc(0), terms+2)

	var (
		led        [workers]int64
		fastServed [workers]int64
		ops        [workers]int64
		workDone   atomic.Int64
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := env.Proc(w)
			for workDone.Load() < terms {
				v, module := election.TestAndSetTraced(p)
				ops[w]++
				if module == 0 {
					fastServed[w]++
				}
				if v != spec.Winner {
					runtime.Gosched() // not the leader this term; try again
					continue
				}
				// Leadership term: do one unit of work, then step down.
				if workDone.Add(1) <= terms {
					led[w]++
				}
				election.Reset(p)
				runtime.Gosched() // give others a chance at the next term
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("leader election: %d workers, %d terms\n\n", workers, terms)
	var totalLed, totalOps, totalFast int64
	for w := 0; w < workers; w++ {
		fmt.Printf("  worker %d: led %3d terms, %5d election ops, %5.1f%% served by registers (A1)\n",
			w, led[w], ops[w], 100*float64(fastServed[w])/float64(max64(ops[w], 1)))
		totalLed += led[w]
		totalOps += ops[w]
		totalFast += fastServed[w]
	}
	fmt.Printf("\n  terms led in total: %d (one leader per term)\n", totalLed)
	fmt.Printf("  fleet-wide fast-path share: %.1f%% of %d ops\n",
		100*float64(totalFast)/float64(totalOps), totalOps)
	fmt.Printf("  rounds consumed: %d\n", election.Round(env.Proc(0)))

	// The run above is one schedule; the registered scenario checks
	// one-leader-per-term (leadership intervals disjoint, rounds == terms)
	// over every interleaving.
	fmt.Println()
	line, ok := scenario.VerifyLine("leaderelection", 2, 0)
	fmt.Println(line)
	if !ok {
		os.Exit(1)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
