// Quickstart: the speculative test-and-set of Alistarh et al. (SPAA 2012).
//
// Eight goroutines race on the composed object (obstruction-free register
// module A1 backed by a wait-free hardware module A2). Exactly one wins.
// The per-process step/RMW counters show the paper's headline property:
// operations that ran without step contention were served by registers
// alone, and only contended operations touched the hardware test-and-set.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/memory"
	"repro/internal/scenario"
	"repro/internal/spec"
	"repro/internal/tas"
)

func main() {
	const n = 8
	env := memory.NewEnv(n)
	object := tas.NewOneShot()

	type result struct {
		proc   int
		value  int64
		module int
		steps  int64
		rmws   int64
	}
	results := make([]result, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := env.Proc(i)
			v, module := object.TestAndSetTraced(p)
			results[i] = result{proc: i, value: v, module: module, steps: p.Steps(), rmws: p.RMWs()}
		}(i)
	}
	wg.Wait()

	fmt.Println("speculative test-and-set, one shot, 8 processes:")
	fmt.Println()
	winners := 0
	moduleName := [2]string{"A1 (registers)", "A2 (hardware)"}
	for _, r := range results {
		outcome := "loser"
		if r.value == spec.Winner {
			outcome = "WINNER"
			winners++
		}
		fmt.Printf("  process %d: %-6s  served by %-14s  %2d steps, %d RMW\n",
			r.proc, outcome, moduleName[r.module], r.steps, r.rmws)
	}
	fmt.Println()
	fmt.Printf("winners: %d\n", winners)
	fmt.Printf("total shared-memory steps: %d, total RMWs: %d\n",
		env.TotalSteps(), env.TotalRMWs())
	fmt.Println("note: RMW > 0 only for operations that experienced step contention —")
	fmt.Println("the composition uses no primitive with consensus number above 2.")

	// This run was one schedule; the registered scenario checks the
	// unique-winner and linearizability claims over *every* interleaving.
	fmt.Println()
	line, ok := scenario.VerifyLine("quickstart", 3, 0)
	fmt.Println(line)
	if !ok {
		os.Exit(1)
	}
}
