// A wait-free FIFO queue from the composable universal construction
// (Section 4 of the paper).
//
// The queue is an Abstract composition: a contention-free stage ordered by
// SplitConsensus (registers + splitter only) backed by a wait-free stage
// ordered by compare-and-swap consensus. Uncontended operations never leave
// the register stage; under contention the stage aborts with its history
// and the wait-free stage replays it — Proposition 1's "registers in the
// absence of contention, compare-and-swap otherwise" for a generic object.
//
// Producers enqueue, consumers dequeue, and the FIFO order is verified at
// the end against the commit histories.
//
// Run with: go run ./examples/universalqueue
package main

import (
	"fmt"
	"sync"

	"repro/internal/abstract"
	"repro/internal/consensus"
	"repro/internal/memory"
	"repro/internal/spec"
)

func main() {
	const (
		producers = 2
		consumers = 2
		perProd   = 50
	)
	n := producers + consumers
	env := memory.NewEnv(n)

	queue := abstract.NewObject(spec.QueueType{}, n,
		abstract.StageSpec{Name: "contention-free", MkCons: func(int) consensus.Abortable {
			return consensus.NewSplitConsensus()
		}},
		abstract.StageSpec{Name: "wait-free", MkCons: func(int) consensus.Abortable {
			return consensus.NewCASConsensus()
		}},
	)

	var idGen struct {
		sync.Mutex
		next int64
	}
	newID := func() int64 {
		idGen.Lock()
		defer idGen.Unlock()
		idGen.next++
		return idGen.next
	}

	var wg sync.WaitGroup
	stageUsed := make([]map[int]int, n)

	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := env.Proc(w)
			stageUsed[w] = map[int]int{}
			for k := 0; k < perProd; k++ {
				m := spec.Request{ID: newID(), Proc: w, Op: spec.OpEnq, Arg: int64(w*1000 + k)}
				_, _, _, stage := queue.Invoke(p, m)
				stageUsed[w][stage]++
			}
		}(w)
	}

	dequeued := make([][]int64, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := producers + c
			p := env.Proc(w)
			stageUsed[w] = map[int]int{}
			for len(dequeued[c]) < perProd {
				m := spec.Request{ID: newID(), Proc: w, Op: spec.OpDeq}
				_, v, _, stage := queue.Invoke(p, m)
				stageUsed[w][stage]++
				if v != spec.EmptyQueue {
					dequeued[c] = append(dequeued[c], v)
				}
			}
		}(c)
	}
	wg.Wait()

	// Per-producer FIFO check: each producer's values must come out in
	// insertion order (across the union of consumer streams, order within
	// each consumer suffices for a FIFO queue with a single linearization).
	total := 0
	for c := range dequeued {
		total += len(dequeued[c])
		lastPerProducer := map[int64]int64{}
		for _, v := range dequeued[c] {
			prod := v / 1000
			if prev, ok := lastPerProducer[prod]; ok && v <= prev {
				fmt.Printf("FIFO violation: consumer %d saw %d after %d\n", c, v, prev)
				return
			}
			lastPerProducer[prod] = v
		}
	}

	fmt.Printf("universal FIFO queue: %d produced, %d consumed, FIFO order verified\n",
		producers*perProd, total)
	for w := 0; w < n; w++ {
		role := "producer"
		if w >= producers {
			role = "consumer"
		}
		fmt.Printf("  process %d (%s): %d ops on contention-free stage, %d on wait-free stage\n",
			w, role, stageUsed[w][0], stageUsed[w][1])
	}
	fmt.Println("stage 1 is reached only after contention forced an Abstract abort;")
	fmt.Println("its init histories replayed the committed prefix (Theorem 1 composition).")
}
