// A wait-free FIFO queue from the composable universal construction
// (Section 4 of the paper).
//
// The queue is an Abstract composition: a contention-free stage ordered by
// SplitConsensus (registers + splitter only) backed by a wait-free stage
// ordered by compare-and-swap consensus. Uncontended operations never leave
// the register stage; under contention the stage aborts with its history
// and the wait-free stage replays it — Proposition 1's "registers in the
// absence of contention, compare-and-swap otherwise" for a generic object.
//
// Producers enqueue, consumers dequeue, and the FIFO order is verified at
// the end against the commit histories.
//
// Run with: go run ./examples/universalqueue
package main

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/abstract"
	"repro/internal/consensus"
	"repro/internal/memory"
	"repro/internal/scenario"
	"repro/internal/spec"
)

func main() {
	const (
		producers = 2
		consumers = 2
		perProd   = 50
	)
	n := producers + consumers
	env := memory.NewEnv(n)

	queue := abstract.NewObject(spec.QueueType{}, n,
		abstract.StageSpec{Name: "contention-free", MkCons: func(int) consensus.Abortable {
			return consensus.NewSplitConsensus()
		}},
		abstract.StageSpec{Name: "wait-free", MkCons: func(int) consensus.Abortable {
			return consensus.NewCASConsensus()
		}},
	)

	var idGen struct {
		sync.Mutex
		next int64
	}
	newID := func() int64 {
		idGen.Lock()
		defer idGen.Unlock()
		idGen.next++
		return idGen.next
	}

	var wg sync.WaitGroup
	stageUsed := make([]map[int]int, n)

	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := env.Proc(w)
			stageUsed[w] = map[int]int{}
			for k := 0; k < perProd; k++ {
				m := spec.Request{ID: newID(), Proc: w, Op: spec.OpEnq, Arg: int64(w*1000 + k)}
				_, _, _, stage := queue.Invoke(p, m)
				stageUsed[w][stage]++
			}
		}(w)
	}

	dequeued := make([][]int64, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := producers + c
			p := env.Proc(w)
			stageUsed[w] = map[int]int{}
			for len(dequeued[c]) < perProd {
				m := spec.Request{ID: newID(), Proc: w, Op: spec.OpDeq}
				_, v, _, stage := queue.Invoke(p, m)
				stageUsed[w][stage]++
				if v != spec.EmptyQueue {
					dequeued[c] = append(dequeued[c], v)
				}
			}
		}(c)
	}
	wg.Wait()

	total := 0
	for c := range dequeued {
		total += len(dequeued[c])
	}
	fmt.Printf("universal FIFO queue: %d produced, %d consumed\n",
		producers*perProd, total)
	for w := 0; w < n; w++ {
		role := "producer"
		if w >= producers {
			role = "consumer"
		}
		fmt.Printf("  process %d (%s): %d ops on contention-free stage, %d on wait-free stage\n",
			w, role, stageUsed[w][0], stageUsed[w][1])
	}
	fmt.Println("stage 1 is reached only after contention forced an Abstract abort;")
	fmt.Println("its init histories replayed the committed prefix (Theorem 1 composition).")

	// The FIFO claim is not asserted on this one schedule: the registered
	// scenario checks queue linearizability (Theorem 3 projection) on the
	// same producer/consumer composition at n=4 — two *concurrent*
	// enqueuers, the case where FIFO order is non-trivial — over a seeded
	// sample of schedules.
	fmt.Println()
	line, ok := scenario.VerifyLine("universalqueue", 4, 800)
	fmt.Println(line)
	if !ok {
		os.Exit(1)
	}
}
